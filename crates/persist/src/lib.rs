//! Versioned binary snapshot format for index persistence.
//!
//! The paper's whole design is external-memory style: an index is built once
//! and then *served* from block storage.  This crate provides the on-disk
//! format that makes a build survive a restart — a deliberately boring,
//! hand-rolled, little-endian container (no serde; the build environment is
//! offline and the vendor policy keeps dependencies at zero):
//!
//! ```text
//! [8]  magic      b"RSMISNP\x01"
//! [4]  version    u32 LE (currently 1)
//! [2+] kind tag   u16 length + UTF-8 display name of the index family
//! ...  sections   repeated: [4] tag | [8] payload length | payload | [4] CRC32
//! ```
//!
//! Every section's payload is protected by a CRC32 (IEEE) checksum, so
//! truncation and bit rot are detected at load time and reported as a typed
//! [`PersistError`] — loading never panics on malformed input.
//!
//! Index families serialise themselves through [`SnapshotWriter`] /
//! [`SnapshotReader`]; the dispatch by kind tag lives in the `registry`
//! crate, which owns the mapping from tag to concrete type.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use geom::{Point, Rect};

/// File magic: identifies an RSMI snapshot (final byte doubles as a format
/// generation marker so future incompatible rewrites fail fast on magic).
pub const MAGIC: [u8; 8] = *b"RSMISNP\x01";

/// Current format version, bumped on any layout change.
pub const FORMAT_VERSION: u32 = 1;

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Everything that can go wrong while saving or loading a snapshot.
///
/// Malformed input is *always* reported through this type; the reader never
/// panics on untrusted bytes.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The file's format version is not one this build can read.
    UnsupportedVersion(u32),
    /// The file ends before the announced data does.
    Truncated,
    /// A section's payload does not match its stored CRC32.
    ChecksumMismatch {
        /// Tag of the failing section.
        tag: u32,
    },
    /// The bytes decode but describe an impossible structure.
    Corrupt(String),
    /// The kind tag names no registered index family.
    UnknownKind(String),
    /// The index family has no snapshot support (third-party trait impls).
    Unsupported(&'static str),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            PersistError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            PersistError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot format version {v}")
            }
            PersistError::Truncated => write!(f, "snapshot file is truncated"),
            PersistError::ChecksumMismatch { tag } => {
                write!(f, "checksum mismatch in section 0x{tag:04x}")
            }
            PersistError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
            PersistError::UnknownKind(kind) => {
                write!(f, "snapshot holds unknown index kind '{kind}'")
            }
            PersistError::Unsupported(name) => {
                write!(f, "index family '{name}' does not support snapshots")
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3), table-driven; the table is built at compile time.
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of a byte slice, the per-section checksum of the format.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Serialises one snapshot: header first, then any number of checksummed
/// sections.  All integers are little-endian; floats are stored as their
/// IEEE-754 bit patterns, so values (including infinities in empty MBRs)
/// round-trip exactly.
#[derive(Debug)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
    /// `(tag, payload start offset)` of the currently open section.
    open: Option<(u32, usize)>,
}

impl SnapshotWriter {
    /// Starts a snapshot for the index family with the given display name
    /// (the kind tag the loader dispatches on).
    pub fn new(kind: &str) -> Self {
        let mut buf = Vec::with_capacity(4096);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        let name = kind.as_bytes();
        assert!(name.len() <= u16::MAX as usize, "kind tag too long");
        buf.extend_from_slice(&(name.len() as u16).to_le_bytes());
        buf.extend_from_slice(name);
        Self { buf, open: None }
    }

    /// Opens a section.  Sections do not nest: composite formats (the
    /// sharded container) embed inner snapshots as opaque byte strings.
    pub fn begin_section(&mut self, tag: u32) {
        assert!(self.open.is_none(), "sections do not nest");
        self.buf.extend_from_slice(&tag.to_le_bytes());
        self.buf.extend_from_slice(&0u64.to_le_bytes()); // patched in end_section
        self.open = Some((tag, self.buf.len()));
    }

    /// Closes the open section, patching its length and appending the CRC32
    /// of its payload.
    pub fn end_section(&mut self) {
        let (_, start) = self.open.take().expect("no open section");
        let len = (self.buf.len() - start) as u64;
        let len_at = start - 8;
        self.buf[len_at..start].copy_from_slice(&len.to_le_bytes());
        let crc = crc32(&self.buf[start..]);
        self.buf.extend_from_slice(&crc.to_le_bytes());
    }

    /// Finishes the snapshot and returns the serialised bytes.
    pub fn finish(self) -> Vec<u8> {
        assert!(self.open.is_none(), "unclosed section");
        self.buf
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `bool` as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `Option<usize>` as a presence byte plus a `u64`.
    pub fn put_opt_usize(&mut self, v: Option<usize>) {
        match v {
            Some(v) => {
                self.put_bool(true);
                self.put_usize(v);
            }
            None => {
                self.put_bool(false);
            }
        }
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (exact round-trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a length-prefixed slice of `f64`s.
    pub fn put_f64s(&mut self, vs: &[f64]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_f64(v);
        }
    }

    /// Appends a length-prefixed slice of `u64`s.
    pub fn put_u64s(&mut self, vs: &[u64]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_u64(v);
        }
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a length-prefixed raw byte string (used for embedded inner
    /// snapshots).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_usize(bytes.len());
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a [`Point`] (`x`, `y`, `id`).
    pub fn put_point(&mut self, p: &Point) {
        self.put_f64(p.x);
        self.put_f64(p.y);
        self.put_u64(p.id);
    }

    /// Appends a [`Rect`] (`min_x`, `min_y`, `max_x`, `max_y`).
    pub fn put_rect(&mut self, r: &Rect) {
        self.put_f64(r.min_x);
        self.put_f64(r.min_y);
        self.put_f64(r.max_x);
        self.put_f64(r.max_y);
    }
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

/// Deserialises one snapshot.  [`SnapshotReader::open`] validates magic and
/// version and returns the kind tag; sections are then read in the order they
/// were written, each verified against its checksum before any field is
/// decoded.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    data: &'a [u8],
    pos: usize,
    /// End of the open section's payload (`data.len()` outside sections).
    limit: usize,
    in_section: bool,
}

impl<'a> SnapshotReader<'a> {
    /// Validates the header and returns the kind tag plus a reader
    /// positioned at the first section.
    pub fn open(data: &'a [u8]) -> Result<(String, Self), PersistError> {
        if data.len() < MAGIC.len() + 4 + 2 {
            // Too short to even hold a header: distinguish "not our file"
            // from "our file, cut short" by whatever magic prefix exists.
            if data.len() >= MAGIC.len() && data[..MAGIC.len()] == MAGIC {
                return Err(PersistError::Truncated);
            }
            return Err(PersistError::BadMagic);
        }
        if data[..MAGIC.len()] != MAGIC {
            return Err(PersistError::BadMagic);
        }
        let mut r = Self {
            data,
            pos: MAGIC.len(),
            limit: data.len(),
            in_section: false,
        };
        let version = r.get_u32()?;
        if version != FORMAT_VERSION {
            return Err(PersistError::UnsupportedVersion(version));
        }
        let name_len = r.get_u16()? as usize;
        let name_bytes = r.take(name_len)?;
        let kind = std::str::from_utf8(name_bytes)
            .map_err(|_| PersistError::Corrupt("kind tag is not UTF-8".into()))?
            .to_string();
        Ok((kind, r))
    }

    /// Opens the next section, verifying its tag and checksum.  Returns
    /// [`PersistError::Corrupt`] when the tag differs from `expected`,
    /// [`PersistError::Truncated`] when the announced payload overruns the
    /// file, and [`PersistError::ChecksumMismatch`] when the payload fails
    /// verification.
    pub fn begin_section(&mut self, expected: u32) -> Result<(), PersistError> {
        assert!(!self.in_section, "sections do not nest");
        let tag = self.get_u32()?;
        if tag != expected {
            return Err(PersistError::Corrupt(format!(
                "expected section 0x{expected:04x}, found 0x{tag:04x}"
            )));
        }
        let len = self.get_u64()? as usize;
        if self
            .pos
            .checked_add(len)
            .and_then(|end| end.checked_add(4))
            .is_none_or(|end| end > self.data.len())
        {
            return Err(PersistError::Truncated);
        }
        let payload = &self.data[self.pos..self.pos + len];
        let stored = u32::from_le_bytes(
            self.data[self.pos + len..self.pos + len + 4]
                .try_into()
                .expect("4 bytes"),
        );
        if crc32(payload) != stored {
            return Err(PersistError::ChecksumMismatch { tag });
        }
        self.limit = self.pos + len;
        self.in_section = true;
        Ok(())
    }

    /// Returns the tag of the next section without consuming it, so callers
    /// can dispatch on versioned section layouts (e.g. the block store's
    /// v1/v2 formats) before committing to [`SnapshotReader::begin_section`].
    ///
    /// # Panics
    /// Panics if called while a section is open (sections do not nest).
    pub fn peek_section_tag(&self) -> Result<u32, PersistError> {
        assert!(!self.in_section, "peek_section_tag inside a section");
        if self.pos.checked_add(4).is_none_or(|end| end > self.limit) {
            return Err(PersistError::Truncated);
        }
        Ok(u32::from_le_bytes(
            self.data[self.pos..self.pos + 4]
                .try_into()
                .expect("4 bytes"),
        ))
    }

    /// Closes the open section, skipping any unread payload and the CRC.
    pub fn end_section(&mut self) -> Result<(), PersistError> {
        assert!(self.in_section, "no open section");
        self.pos = self.limit + 4; // checksum already verified in begin_section
        self.limit = self.data.len();
        self.in_section = false;
        Ok(())
    }

    /// Bytes left in the current section (or file).
    pub fn remaining(&self) -> usize {
        self.limit - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.pos.checked_add(n).is_none_or(|end| end > self.limit) {
            return Err(PersistError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn get_u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `bool`, rejecting anything but 0 or 1.
    pub fn get_bool(&mut self) -> Result<bool, PersistError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(PersistError::Corrupt(format!("invalid bool byte {other}"))),
        }
    }

    /// Reads a `u16`.
    pub fn get_u16(&mut self) -> Result<u16, PersistError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Reads a `usize` stored as `u64`.
    pub fn get_usize(&mut self) -> Result<usize, PersistError> {
        usize::try_from(self.get_u64()?)
            .map_err(|_| PersistError::Corrupt("count exceeds address space".into()))
    }

    /// Reads an element count and validates it against the bytes actually
    /// remaining (each element occupying at least `min_elem_bytes`), so a
    /// corrupt length cannot trigger a huge allocation.
    pub fn get_len(&mut self, min_elem_bytes: usize) -> Result<usize, PersistError> {
        let n = self.get_usize()?;
        if n.checked_mul(min_elem_bytes.max(1))
            .is_none_or(|bytes| bytes > self.remaining())
        {
            return Err(PersistError::Corrupt(format!(
                "element count {n} overruns its section"
            )));
        }
        Ok(n)
    }

    /// Reads an `Option<usize>`.
    pub fn get_opt_usize(&mut self) -> Result<Option<usize>, PersistError> {
        if self.get_bool()? {
            Ok(Some(self.get_usize()?))
        } else {
            Ok(None)
        }
    }

    /// Reads an `f64` from its bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a length-prefixed `f64` vector.
    pub fn get_f64s(&mut self) -> Result<Vec<f64>, PersistError> {
        let n = self.get_len(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_f64()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed `u64` vector.
    pub fn get_u64s(&mut self) -> Result<Vec<u64>, PersistError> {
        let n = self.get_len(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_u64()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, PersistError> {
        let n = self.get_len(1)?;
        let bytes = self.take(n)?;
        Ok(std::str::from_utf8(bytes)
            .map_err(|_| PersistError::Corrupt("string is not UTF-8".into()))?
            .to_string())
    }

    /// Reads a length-prefixed raw byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], PersistError> {
        let n = self.get_len(1)?;
        self.take(n)
    }

    /// Reads a [`Point`].
    pub fn get_point(&mut self) -> Result<Point, PersistError> {
        let x = self.get_f64()?;
        let y = self.get_f64()?;
        let id = self.get_u64()?;
        Ok(Point::with_id(x, y, id))
    }

    /// Reads a [`Rect`] (exact bit patterns; corners are not re-ordered so
    /// the "impossible" empty rectangle round-trips unchanged).
    pub fn get_rect(&mut self) -> Result<Rect, PersistError> {
        let mut r = Rect::empty();
        r.min_x = self.get_f64()?;
        r.min_y = self.get_f64()?;
        r.max_x = self.get_f64()?;
        r.max_y = self.get_f64()?;
        Ok(r)
    }
}

// ---------------------------------------------------------------------
// File helpers
// ---------------------------------------------------------------------

/// Writes snapshot bytes to a file.
pub fn write_file(path: &std::path::Path, bytes: &[u8]) -> Result<(), PersistError> {
    std::fs::write(path, bytes)?;
    Ok(())
}

/// Reads snapshot bytes from a file.
pub fn read_file(path: &std::path::Path) -> Result<Vec<u8>, PersistError> {
    Ok(std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TAG: u32 = 0x0042;

    fn sample() -> Vec<u8> {
        let mut w = SnapshotWriter::new("Demo");
        w.begin_section(TAG);
        w.put_u64(7);
        w.put_f64(0.25);
        w.put_bool(true);
        w.put_opt_usize(Some(9));
        w.put_opt_usize(None);
        w.put_point(&Point::with_id(0.1, 0.9, 3));
        w.put_rect(&Rect::new(0.0, 0.0, 1.0, 1.0));
        w.put_str("hello");
        w.put_f64s(&[1.0, f64::INFINITY, f64::NEG_INFINITY]);
        w.end_section();
        w.begin_section(TAG + 1);
        w.put_bytes(b"nested blob");
        w.end_section();
        w.finish()
    }

    #[test]
    fn roundtrip_all_primitives() {
        let bytes = sample();
        let (kind, mut r) = SnapshotReader::open(&bytes).unwrap();
        assert_eq!(kind, "Demo");
        r.begin_section(TAG).unwrap();
        assert_eq!(r.get_u64().unwrap(), 7);
        assert_eq!(r.get_f64().unwrap(), 0.25);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_opt_usize().unwrap(), Some(9));
        assert_eq!(r.get_opt_usize().unwrap(), None);
        let p = r.get_point().unwrap();
        assert_eq!((p.x, p.y, p.id), (0.1, 0.9, 3));
        assert_eq!(r.get_rect().unwrap(), Rect::new(0.0, 0.0, 1.0, 1.0));
        assert_eq!(r.get_str().unwrap(), "hello");
        let v = r.get_f64s().unwrap();
        assert_eq!(v[0], 1.0);
        assert!(v[1].is_infinite() && v[1] > 0.0);
        assert!(v[2].is_infinite() && v[2] < 0.0);
        r.end_section().unwrap();
        r.begin_section(TAG + 1).unwrap();
        assert_eq!(r.get_bytes().unwrap(), b"nested blob");
        r.end_section().unwrap();
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn empty_rect_roundtrips_exactly() {
        let mut w = SnapshotWriter::new("Demo");
        w.begin_section(TAG);
        w.put_rect(&Rect::empty());
        w.end_section();
        let bytes = w.finish();
        let (_, mut r) = SnapshotReader::open(&bytes).unwrap();
        r.begin_section(TAG).unwrap();
        let e = r.get_rect().unwrap();
        assert!(e.is_empty());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            SnapshotReader::open(&bytes),
            Err(PersistError::BadMagic)
        ));
        assert!(matches!(
            SnapshotReader::open(b"short"),
            Err(PersistError::BadMagic)
        ));
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let mut bytes = sample();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            SnapshotReader::open(&bytes),
            Err(PersistError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = sample();
        // Cut into the final section's checksum.
        let cut = &bytes[..bytes.len() - 2];
        let (_, mut r) = SnapshotReader::open(cut).unwrap();
        r.begin_section(TAG).unwrap();
        r.end_section().unwrap();
        assert!(matches!(
            r.begin_section(TAG + 1),
            Err(PersistError::Truncated)
        ));
        // Cut mid-header.
        let cut = &bytes[..MAGIC.len() + 2];
        assert!(matches!(
            SnapshotReader::open(cut),
            Err(PersistError::Truncated)
        ));
    }

    #[test]
    fn checksum_mismatch_is_detected() {
        let mut bytes = sample();
        // Flip one payload byte of the first section (header is
        // 8 + 4 + 2 + 4 bytes, then 4 tag + 8 len).
        let payload_at = 8 + 4 + 2 + "Demo".len() + 4 + 8;
        bytes[payload_at] ^= 0x01;
        let (_, mut r) = SnapshotReader::open(&bytes).unwrap();
        assert!(matches!(
            r.begin_section(TAG),
            Err(PersistError::ChecksumMismatch { tag: TAG })
        ));
    }

    #[test]
    fn wrong_section_tag_is_corrupt() {
        let bytes = sample();
        let (_, mut r) = SnapshotReader::open(&bytes).unwrap();
        assert!(matches!(
            r.begin_section(TAG + 5),
            Err(PersistError::Corrupt(_))
        ));
    }

    #[test]
    fn oversized_length_prefix_is_corrupt_not_oom() {
        let mut w = SnapshotWriter::new("Demo");
        w.begin_section(TAG);
        w.put_usize(usize::MAX / 2); // claims an absurd element count
        w.end_section();
        let bytes = w.finish();
        let (_, mut r) = SnapshotReader::open(&bytes).unwrap();
        r.begin_section(TAG).unwrap();
        assert!(matches!(r.get_f64s(), Err(PersistError::Corrupt(_))));
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn errors_display_and_convert() {
        let e = PersistError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "x"));
        assert!(e.to_string().contains("I/O"));
        assert!(PersistError::BadMagic.to_string().contains("magic"));
        assert!(PersistError::UnknownKind("Zq".into())
            .to_string()
            .contains("Zq"));
    }
}
