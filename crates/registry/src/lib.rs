//! Dynamic index registry: construct any index family through one entry
//! point, by kind or by name.
//!
//! The paper's value is a head-to-head comparison of seven index variants;
//! this crate is the single place that knows how to build each of them.  The
//! bench harness, the experiments binary, the examples, and the integration
//! tests all construct indices exclusively through [`build_index`], so
//! adding an index family is a one-file change.
//!
//! ```
//! use registry::{build_index, IndexConfig, IndexKind};
//! use common::{QueryContext, SpatialIndex};
//! use geom::Point;
//!
//! let points: Vec<Point> = (0..500)
//!     .map(|i| Point::with_id((i as f64 * 0.618) % 1.0, (i as f64 * 0.414) % 1.0, i))
//!     .collect();
//! let index = build_index(IndexKind::Grid, &points, &IndexConfig::fast());
//! let mut cx = QueryContext::new();
//! assert_eq!(index.point_query(&points[7], &mut cx).unwrap().id, 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use baselines::zm::ZmConfig;
use baselines::{GridFile, HilbertRTree, KdbTree, RStarTree, ZOrderModel};
use common::SpatialIndex;
use geom::Point;
use rsmi::{Rsmi, RsmiConfig, RsmiExact};
use sfc::CurveKind;

/// The index families compared in the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexKind {
    /// Grid File.
    Grid,
    /// Rank-space Hilbert packed R-tree.
    Hrr,
    /// K-D-B-tree.
    Kdb,
    /// R*-tree (dynamic insertion).
    RStar,
    /// RSMI (approximate window/kNN answers).
    Rsmi,
    /// RSMI with MBR-based exact query answering (same structure as RSMI,
    /// exact traversal at query time).
    Rsmia,
    /// Z-order learned model.
    Zm,
}

impl IndexKind {
    /// All families, in the order the paper's legends list them.
    pub fn all() -> Vec<IndexKind> {
        vec![
            IndexKind::Grid,
            IndexKind::Hrr,
            IndexKind::Kdb,
            IndexKind::RStar,
            IndexKind::Rsmi,
            IndexKind::Rsmia,
            IndexKind::Zm,
        ]
    }

    /// The families without the RSMIa duplicate (used for point queries and
    /// update measurements where RSMIa is identical to RSMI).
    pub fn without_rsmia() -> Vec<IndexKind> {
        Self::all()
            .into_iter()
            .filter(|k| *k != IndexKind::Rsmia)
            .collect()
    }

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            IndexKind::Grid => "Grid",
            IndexKind::Hrr => "HRR",
            IndexKind::Kdb => "KDB",
            IndexKind::RStar => "RR*",
            IndexKind::Rsmi => "RSMI",
            IndexKind::Rsmia => "RSMIa",
            IndexKind::Zm => "ZM",
        }
    }

    /// Whether window queries of this family are exact (match brute force).
    pub fn exact_windows(&self) -> bool {
        !matches!(self, IndexKind::Rsmi | IndexKind::Zm)
    }

    /// Whether kNN queries of this family are exact.
    pub fn exact_knn(&self) -> bool {
        !matches!(self, IndexKind::Rsmi | IndexKind::Zm)
    }

    /// Whether this family contains learned sub-models.
    pub fn is_learned(&self) -> bool {
        matches!(self, IndexKind::Rsmi | IndexKind::Rsmia | IndexKind::Zm)
    }
}

impl std::fmt::Display for IndexKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for IndexKind {
    type Err = String;

    /// Parses a family from its display name (case-insensitive; `RR*` also
    /// accepts `rstar`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "grid" => Ok(IndexKind::Grid),
            "hrr" => Ok(IndexKind::Hrr),
            "kdb" => Ok(IndexKind::Kdb),
            "rr*" | "rstar" | "r*" => Ok(IndexKind::RStar),
            "rsmi" => Ok(IndexKind::Rsmi),
            "rsmia" => Ok(IndexKind::Rsmia),
            "zm" => Ok(IndexKind::Zm),
            other => Err(format!(
                "unknown index kind '{other}' (expected one of Grid, HRR, KDB, RR*, RSMI, RSMIa, ZM)"
            )),
        }
    }
}

/// Construction parameters shared by every index family.
#[derive(Debug, Clone, Copy)]
pub struct IndexConfig {
    /// Block capacity `B` for every index (the paper uses 100).
    pub block_capacity: usize,
    /// RSMI partition threshold `N`.
    pub partition_threshold: usize,
    /// Training epochs for the learned indices.
    pub epochs: usize,
    /// SGD learning rate for the learned indices.
    pub learning_rate: f64,
    /// Random seed for deterministic model initialisation.
    pub seed: u64,
    /// Space-filling curve used by RSMI's ordering.
    pub curve: CurveKind,
}

impl Default for IndexConfig {
    fn default() -> Self {
        Self {
            block_capacity: 100,
            partition_threshold: 10_000,
            epochs: 30,
            learning_rate: 0.15,
            seed: 42,
            curve: CurveKind::Hilbert,
        }
    }
}

impl IndexConfig {
    /// Small configuration for tests and doc examples: builds finish in
    /// milliseconds.
    pub fn fast() -> Self {
        Self {
            block_capacity: 50,
            partition_threshold: 2_000,
            epochs: 25,
            learning_rate: 0.3,
            ..Self::default()
        }
    }

    /// Returns a copy with the given block capacity `B`.
    pub fn with_block_capacity(mut self, b: usize) -> Self {
        self.block_capacity = b;
        self
    }

    /// Returns a copy with the given partition threshold `N`.
    pub fn with_partition_threshold(mut self, n: usize) -> Self {
        self.partition_threshold = n;
        self
    }

    /// Returns a copy with the given epoch count.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Returns a copy with the given seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The RSMI configuration corresponding to this configuration.
    pub fn rsmi_config(&self) -> RsmiConfig {
        let mut cfg = RsmiConfig::default()
            .with_block_capacity(self.block_capacity)
            .with_partition_threshold(self.partition_threshold)
            .with_epochs(self.epochs)
            .with_curve(self.curve);
        cfg.learning_rate = self.learning_rate;
        cfg.seed = self.seed;
        cfg
    }

    /// The ZM configuration corresponding to this configuration.
    pub fn zm_config(&self) -> ZmConfig {
        ZmConfig {
            block_capacity: self.block_capacity,
            epochs: self.epochs,
            learning_rate: self.learning_rate,
            seed: self.seed,
        }
    }
}

/// Builds one index family over the given points.
///
/// This is the registry's single construction entry point: callers select a
/// family dynamically (by [`IndexKind`] value or by parsing a name) and get
/// back a boxed [`SpatialIndex`] answering the uniform query API.
pub fn build_index(kind: IndexKind, points: &[Point], cfg: &IndexConfig) -> Box<dyn SpatialIndex> {
    let pts = points.to_vec();
    match kind {
        IndexKind::Grid => Box::new(GridFile::build(pts, cfg.block_capacity)),
        IndexKind::Hrr => Box::new(HilbertRTree::build(pts, cfg.block_capacity)),
        IndexKind::Kdb => Box::new(KdbTree::build(pts, cfg.block_capacity)),
        IndexKind::RStar => Box::new(RStarTree::build(pts, cfg.block_capacity)),
        IndexKind::Rsmi => Box::new(Rsmi::build(pts, cfg.rsmi_config())),
        IndexKind::Rsmia => Box::new(RsmiExact::build(pts, cfg.rsmi_config())),
        IndexKind::Zm => Box::new(ZOrderModel::build(pts, cfg.zm_config())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use common::QueryContext;
    use datagen::{generate, Distribution};

    #[test]
    fn every_kind_builds_and_reports_its_name() {
        let data = generate(Distribution::Uniform, 400, 3);
        for kind in IndexKind::all() {
            let index = build_index(kind, &data, &IndexConfig::fast());
            assert_eq!(index.name(), kind.name());
            assert_eq!(index.len(), data.len());
        }
    }

    #[test]
    fn built_indices_answer_point_queries() {
        let data = generate(Distribution::Normal, 600, 5);
        let mut cx = QueryContext::new();
        for kind in IndexKind::all() {
            let index = build_index(kind, &data, &IndexConfig::fast());
            for p in data.iter().step_by(41) {
                assert_eq!(
                    index.point_query(p, &mut cx).map(|f| f.id),
                    Some(p.id),
                    "{} lost a point",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn kind_names_round_trip_through_from_str() {
        for kind in IndexKind::all() {
            let parsed: IndexKind = kind.name().parse().expect("parse display name");
            assert_eq!(parsed, kind);
        }
        assert_eq!("rstar".parse::<IndexKind>().unwrap(), IndexKind::RStar);
        assert!("nonsense".parse::<IndexKind>().is_err());
    }

    #[test]
    fn exactness_flags_partition_the_families() {
        assert!(IndexKind::Grid.exact_windows());
        assert!(IndexKind::Rsmia.exact_windows());
        assert!(!IndexKind::Rsmi.exact_windows());
        assert!(!IndexKind::Zm.exact_knn());
        assert!(IndexKind::Rsmia.is_learned());
        assert!(!IndexKind::Kdb.is_learned());
    }

    #[test]
    fn learned_kinds_expose_model_counts_through_the_trait() {
        let data = generate(Distribution::Uniform, 1500, 7);
        for kind in IndexKind::all() {
            let index = build_index(kind, &data, &IndexConfig::fast());
            if kind.is_learned() {
                assert!(index.model_count() > 0, "{} has no models", kind.name());
            } else {
                assert_eq!(index.model_count(), 0, "{}", kind.name());
            }
        }
    }

    #[test]
    fn boxed_indices_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync + ?Sized>() {}
        assert_send_sync::<dyn SpatialIndex>();
        assert_send_sync::<Box<dyn SpatialIndex>>();
    }
}
