//! Dynamic index registry: construct any index family through one entry
//! point, by kind or by name.
//!
//! The paper's value is a head-to-head comparison of seven index variants;
//! this crate is the single place that knows how to build each of them.  The
//! bench harness, the experiments binary, the examples, and the integration
//! tests all construct indices exclusively through [`build_index`], so
//! adding an index family is a one-file change.
//!
//! ```
//! use registry::{build_index, IndexConfig, IndexKind};
//! use common::{QueryContext, SpatialIndex};
//! use geom::Point;
//!
//! let points: Vec<Point> = (0..500)
//!     .map(|i| Point::with_id((i as f64 * 0.618) % 1.0, (i as f64 * 0.414) % 1.0, i))
//!     .collect();
//! let index = build_index(IndexKind::Grid, &points, &IndexConfig::fast());
//! let mut cx = QueryContext::new();
//! assert_eq!(index.point_query(&points[7], &mut cx).unwrap().id, 7);
//!
//! // Distance-range queries and index-nested joins are part of the same
//! // uniform API — and, unlike window/kNN, exact for every registered kind.
//! let nearby = index.range_query(&points[7], 0.05, &mut cx);
//! assert!(nearby.iter().any(|p| p.id == 7));
//! let other = build_index(IndexKind::Hrr, &points[..50], &IndexConfig::fast());
//! let pairs = index.distance_join(other.as_ref(), 0.01, &mut cx);
//! assert!(pairs.len() >= 50, "every point pairs with its own copy");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use baselines::zm::ZmConfig;
use baselines::{GridFile, HilbertRTree, KdbTree, RStarTree, ZOrderModel};
use common::SpatialIndex;
use geom::Point;
use rsmi::{Rsmi, RsmiConfig, RsmiExact};
use sfc::CurveKind;
use std::path::Path;

pub use persist::PersistError;

/// A leaf index family — the families compared head-to-head in the paper,
/// and the inner-index payload of [`IndexKind::Sharded`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaseKind {
    /// Grid File.
    Grid,
    /// Rank-space Hilbert packed R-tree.
    Hrr,
    /// K-D-B-tree.
    Kdb,
    /// R*-tree (dynamic insertion).
    RStar,
    /// RSMI (approximate window/kNN answers).
    Rsmi,
    /// RSMI with MBR-based exact query answering (same structure as RSMI,
    /// exact traversal at query time).
    Rsmia,
    /// Z-order learned model.
    Zm,
}

impl BaseKind {
    /// All leaf families, in the order the paper's legends list them.
    pub fn all() -> [BaseKind; 7] {
        [
            BaseKind::Grid,
            BaseKind::Hrr,
            BaseKind::Kdb,
            BaseKind::RStar,
            BaseKind::Rsmi,
            BaseKind::Rsmia,
            BaseKind::Zm,
        ]
    }

    /// The unsharded [`IndexKind`] of this family.
    pub fn unsharded(self) -> IndexKind {
        match self {
            BaseKind::Grid => IndexKind::Grid,
            BaseKind::Hrr => IndexKind::Hrr,
            BaseKind::Kdb => IndexKind::Kdb,
            BaseKind::RStar => IndexKind::RStar,
            BaseKind::Rsmi => IndexKind::Rsmi,
            BaseKind::Rsmia => IndexKind::Rsmia,
            BaseKind::Zm => IndexKind::Zm,
        }
    }

    /// The sharded [`IndexKind`] wrapping this family.
    pub fn sharded(self) -> IndexKind {
        IndexKind::Sharded(self)
    }
}

/// The index families the registry can build: the paper's seven leaf
/// families plus their sharded serving-engine composition
/// (`crates/engine`), registered as `sharded-<family>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexKind {
    /// Grid File.
    Grid,
    /// Rank-space Hilbert packed R-tree.
    Hrr,
    /// K-D-B-tree.
    Kdb,
    /// R*-tree (dynamic insertion).
    RStar,
    /// RSMI (approximate window/kNN answers).
    Rsmi,
    /// RSMI with MBR-based exact query answering (same structure as RSMI,
    /// exact traversal at query time).
    Rsmia,
    /// Z-order learned model.
    Zm,
    /// The sharded serving engine wrapping one inner family: learned
    /// rank-space partitioning, routed/pruned fan-out, parallel batches.
    Sharded(BaseKind),
}

impl IndexKind {
    /// The paper's seven leaf families, in the order its legends list them
    /// (sharded compositions are not part of the paper's figures; see
    /// [`IndexKind::all_sharded`]).
    pub fn all() -> Vec<IndexKind> {
        BaseKind::all()
            .into_iter()
            .map(BaseKind::unsharded)
            .collect()
    }

    /// The seven sharded compositions, in the same order.
    pub fn all_sharded() -> Vec<IndexKind> {
        BaseKind::all().into_iter().map(BaseKind::sharded).collect()
    }

    /// Every kind the registry can build: leaf families then sharded
    /// compositions.
    pub fn all_with_sharded() -> Vec<IndexKind> {
        let mut v = Self::all();
        v.extend(Self::all_sharded());
        v
    }

    /// The families without the RSMIa duplicate (used for point queries and
    /// update measurements where RSMIa is identical to RSMI).
    pub fn without_rsmia() -> Vec<IndexKind> {
        Self::all()
            .into_iter()
            .filter(|k| *k != IndexKind::Rsmia)
            .collect()
    }

    /// The inner leaf family when this is a sharded composition.
    pub fn base(&self) -> Option<BaseKind> {
        match self {
            IndexKind::Sharded(base) => Some(*base),
            _ => None,
        }
    }

    /// Display name matching the paper's figures (sharded compositions
    /// prefix the inner family's name).
    pub fn name(&self) -> &'static str {
        match self {
            IndexKind::Grid => "Grid",
            IndexKind::Hrr => "HRR",
            IndexKind::Kdb => "KDB",
            IndexKind::RStar => "RR*",
            IndexKind::Rsmi => "RSMI",
            IndexKind::Rsmia => "RSMIa",
            IndexKind::Zm => "ZM",
            IndexKind::Sharded(base) => match base {
                BaseKind::Grid => "Sharded-Grid",
                BaseKind::Hrr => "Sharded-HRR",
                BaseKind::Kdb => "Sharded-KDB",
                BaseKind::RStar => "Sharded-RR*",
                BaseKind::Rsmi => "Sharded-RSMI",
                BaseKind::Rsmia => "Sharded-RSMIa",
                BaseKind::Zm => "Sharded-ZM",
            },
        }
    }

    /// Whether window queries of this family are exact (match brute force).
    /// Sharding preserves exactness: the union of exact per-shard answers
    /// over MBR-intersecting shards is the exact answer.
    pub fn exact_windows(&self) -> bool {
        match self {
            IndexKind::Sharded(base) => base.unsharded().exact_windows(),
            IndexKind::Rsmi | IndexKind::Zm => false,
            _ => true,
        }
    }

    /// Whether kNN queries of this family are exact.
    pub fn exact_knn(&self) -> bool {
        match self {
            IndexKind::Sharded(base) => base.unsharded().exact_knn(),
            IndexKind::Rsmi | IndexKind::Zm => false,
            _ => true,
        }
    }

    /// Whether this family contains learned sub-models.
    pub fn is_learned(&self) -> bool {
        match self {
            IndexKind::Sharded(base) => base.unsharded().is_learned(),
            IndexKind::Rsmi | IndexKind::Rsmia | IndexKind::Zm => true,
            _ => false,
        }
    }
}

impl std::fmt::Display for IndexKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for IndexKind {
    type Err = String;

    /// Parses a family from its display name (case-insensitive; `RR*` also
    /// accepts `rstar`).  A `sharded-` prefix selects the sharded
    /// composition of the suffix family, e.g. `sharded-rsmi`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        if let Some(inner) = lower.strip_prefix("sharded-") {
            let leaf: IndexKind = inner.parse()?;
            return match leaf {
                IndexKind::Grid => Ok(BaseKind::Grid.sharded()),
                IndexKind::Hrr => Ok(BaseKind::Hrr.sharded()),
                IndexKind::Kdb => Ok(BaseKind::Kdb.sharded()),
                IndexKind::RStar => Ok(BaseKind::RStar.sharded()),
                IndexKind::Rsmi => Ok(BaseKind::Rsmi.sharded()),
                IndexKind::Rsmia => Ok(BaseKind::Rsmia.sharded()),
                IndexKind::Zm => Ok(BaseKind::Zm.sharded()),
                IndexKind::Sharded(_) => {
                    Err(format!("cannot shard an already-sharded kind: '{s}'"))
                }
            };
        }
        match lower.as_str() {
            "grid" => Ok(IndexKind::Grid),
            "hrr" => Ok(IndexKind::Hrr),
            "kdb" => Ok(IndexKind::Kdb),
            "rr*" | "rstar" | "r*" => Ok(IndexKind::RStar),
            "rsmi" => Ok(IndexKind::Rsmi),
            "rsmia" => Ok(IndexKind::Rsmia),
            "zm" => Ok(IndexKind::Zm),
            other => Err(format!(
                "unknown index kind '{other}' (expected one of Grid, HRR, KDB, RR*, RSMI, \
                 RSMIa, ZM, or sharded-<kind>)"
            )),
        }
    }
}

/// Construction parameters shared by every index family.
#[derive(Debug, Clone, Copy)]
pub struct IndexConfig {
    /// Block capacity `B` for every index (the paper uses 100).
    pub block_capacity: usize,
    /// RSMI partition threshold `N`.
    pub partition_threshold: usize,
    /// Training epochs for the learned indices.
    pub epochs: usize,
    /// SGD learning rate for the learned indices.
    pub learning_rate: f64,
    /// Random seed for deterministic model initialisation.
    pub seed: u64,
    /// Space-filling curve used by RSMI's ordering (and by the sharded
    /// engine's partitioner).
    pub curve: CurveKind,
    /// Shard count for the `Sharded(_)` kinds (ignored by leaf families).
    pub shards: usize,
    /// Worker threads used by the batch entry points of the `Sharded(_)`
    /// kinds (1 = sequential; ignored by leaf families).
    pub threads: usize,
}

impl Default for IndexConfig {
    fn default() -> Self {
        Self {
            block_capacity: 100,
            partition_threshold: 10_000,
            epochs: 30,
            learning_rate: 0.15,
            seed: 42,
            curve: CurveKind::Hilbert,
            shards: 4,
            threads: 1,
        }
    }
}

impl IndexConfig {
    /// Small configuration for tests and doc examples: builds finish in
    /// milliseconds.
    pub fn fast() -> Self {
        Self {
            block_capacity: 50,
            partition_threshold: 2_000,
            epochs: 25,
            learning_rate: 0.3,
            ..Self::default()
        }
    }

    /// Returns a copy with the given block capacity `B`.
    pub fn with_block_capacity(mut self, b: usize) -> Self {
        self.block_capacity = b;
        self
    }

    /// Returns a copy with the given partition threshold `N`.
    pub fn with_partition_threshold(mut self, n: usize) -> Self {
        self.partition_threshold = n;
        self
    }

    /// Returns a copy with the given epoch count.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Returns a copy with the given seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with the given shard count (for `Sharded(_)` kinds).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Returns a copy with the given batch-executor thread count (for
    /// `Sharded(_)` kinds).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The sharded-engine configuration corresponding to this
    /// configuration.
    pub fn sharded_config(&self) -> engine::ShardedConfig {
        engine::ShardedConfig {
            shards: self.shards,
            threads: self.threads,
            curve: self.curve,
        }
    }

    /// The RSMI configuration corresponding to this configuration.
    pub fn rsmi_config(&self) -> RsmiConfig {
        let mut cfg = RsmiConfig::default()
            .with_block_capacity(self.block_capacity)
            .with_partition_threshold(self.partition_threshold)
            .with_epochs(self.epochs)
            .with_curve(self.curve);
        cfg.learning_rate = self.learning_rate;
        cfg.seed = self.seed;
        cfg
    }

    /// The ZM configuration corresponding to this configuration.
    pub fn zm_config(&self) -> ZmConfig {
        ZmConfig {
            block_capacity: self.block_capacity,
            epochs: self.epochs,
            learning_rate: self.learning_rate,
            seed: self.seed,
        }
    }
}

/// Builds one index family over the given points.
///
/// This is the registry's single construction entry point: callers select a
/// family dynamically (by [`IndexKind`] value or by parsing a name) and get
/// back a boxed [`SpatialIndex`] answering the uniform query API.
pub fn build_index(kind: IndexKind, points: &[Point], cfg: &IndexConfig) -> Box<dyn SpatialIndex> {
    match kind {
        IndexKind::Grid => Box::new(GridFile::build(points.to_vec(), cfg.block_capacity)),
        IndexKind::Hrr => Box::new(HilbertRTree::build(points.to_vec(), cfg.block_capacity)),
        IndexKind::Kdb => Box::new(KdbTree::build(points.to_vec(), cfg.block_capacity)),
        IndexKind::RStar => Box::new(RStarTree::build(points.to_vec(), cfg.block_capacity)),
        IndexKind::Rsmi => Box::new(Rsmi::build(points.to_vec(), cfg.rsmi_config())),
        IndexKind::Rsmia => Box::new(RsmiExact::build(points.to_vec(), cfg.rsmi_config())),
        IndexKind::Zm => Box::new(ZOrderModel::build(points.to_vec(), cfg.zm_config())),
        IndexKind::Sharded(base) => {
            // The engine takes the registry's own entry point as the
            // inner-index factory, so every registered leaf family composes
            // with the sharded serving layer without a dependency cycle.
            let inner_kind = base.unsharded();
            let inner_cfg = *cfg;
            Box::new(engine::ShardedIndex::build(
                points,
                cfg.sharded_config(),
                kind.name(),
                &move |pts| build_index(inner_kind, pts, &inner_cfg),
            ))
        }
    }
}

// ---------------------------------------------------------------------
// Snapshot persistence: save any built index, load it back by kind tag
// ---------------------------------------------------------------------

/// Serialises a built index into snapshot bytes: the versioned header
/// carries the family's display name as the kind tag, and the body is
/// whatever the family's [`SpatialIndex::write_snapshot`] appends.
///
/// The full build → query → save → load round trip:
///
/// ```
/// use common::{QueryContext, SpatialIndex};
/// use geom::Point;
/// use registry::{build_index, load_index_bytes, snapshot_bytes, IndexConfig, IndexKind};
///
/// let points: Vec<Point> = (0..400)
///     .map(|i| Point::with_id((i as f64 * 0.618) % 1.0, (i as f64 * 0.414) % 1.0, i))
///     .collect();
/// let index = build_index(IndexKind::Hrr, &points, &IndexConfig::fast());
/// let mut cx = QueryContext::new();
/// let before = index.point_query(&points[42], &mut cx);
///
/// // Save, drop the built index, load it back: answers are identical.
/// let bytes = snapshot_bytes(index.as_ref()).unwrap();
/// drop(index);
/// let restored = load_index_bytes(&bytes).unwrap();
/// assert_eq!(restored.name(), "HRR");
/// assert_eq!(restored.point_query(&points[42], &mut cx), before);
/// ```
pub fn snapshot_bytes(index: &dyn SpatialIndex) -> Result<Vec<u8>, PersistError> {
    let mut w = persist::SnapshotWriter::new(index.name());
    index.write_snapshot(&mut w)?;
    Ok(w.finish())
}

/// Saves a built index to a snapshot file (see [`snapshot_bytes`]).
pub fn save_index(index: &dyn SpatialIndex, path: &Path) -> Result<(), PersistError> {
    persist::write_file(path, &snapshot_bytes(index)?)
}

/// Loads an index from snapshot bytes, dispatching on the kind tag embedded
/// in the header.  The loaded index answers every query with byte-identical
/// results and statistics to the index that was saved — nothing is rebuilt
/// or retrained.
pub fn load_index_bytes(bytes: &[u8]) -> Result<Box<dyn SpatialIndex>, PersistError> {
    let (kind_tag, mut r) = persist::SnapshotReader::open(bytes)?;
    let kind: IndexKind = kind_tag
        .parse()
        .map_err(|_| PersistError::UnknownKind(kind_tag.clone()))?;
    let index: Box<dyn SpatialIndex> = match kind {
        IndexKind::Grid => Box::new(GridFile::read_snapshot(&mut r)?),
        IndexKind::Hrr => Box::new(HilbertRTree::read_snapshot(&mut r)?),
        IndexKind::Kdb => Box::new(KdbTree::read_snapshot(&mut r)?),
        IndexKind::RStar => Box::new(RStarTree::read_snapshot(&mut r)?),
        IndexKind::Rsmi => Box::new(Rsmi::read_snapshot(&mut r)?),
        IndexKind::Rsmia => Box::new(RsmiExact::read_snapshot(&mut r)?),
        IndexKind::Zm => Box::new(ZOrderModel::read_snapshot(&mut r)?),
        IndexKind::Sharded(base) => {
            // The engine reads the container; this closure turns each
            // embedded inner snapshot back into an index through this very
            // function — mirroring how `build_index` hands the engine its
            // own construction entry point.
            let expected = base.unsharded();
            let loaded = engine::ShardedIndex::read_snapshot(&mut r, kind.name(), &|blob| {
                // Check the embedded snapshot's kind tag *before* recursing:
                // a crafted sharded-in-sharded chain would otherwise nest
                // loads until the stack overflows.  The expected inner kind
                // is always a leaf family, so recursion depth is bounded.
                let (inner_tag, _) = persist::SnapshotReader::open(blob)?;
                if inner_tag != expected.name() {
                    return Err(PersistError::Corrupt(format!(
                        "sharded container for {} holds a '{inner_tag}' shard",
                        kind.name(),
                    )));
                }
                load_index_bytes(blob)
            })?;
            Box::new(loaded)
        }
    };
    Ok(index)
}

/// Loads an index from a snapshot file (see [`load_index_bytes`]).
pub fn load_index(path: &Path) -> Result<Box<dyn SpatialIndex>, PersistError> {
    load_index_bytes(&persist::read_file(path)?)
}

// ---------------------------------------------------------------------
// Live serving: wrap any registered kind in a SpatialServer
// ---------------------------------------------------------------------

pub use server::{CompactionMode, CompactionPolicy, ServeConfig, ServerConfig, SpatialServer};

/// The compaction rebuild closure for one registered kind: the registry's
/// own [`build_index`] with the kind and configuration captured, which is
/// how every family composes with the serving engine.
pub fn rebuild_fn(kind: IndexKind, cfg: &IndexConfig) -> server::RebuildFn {
    let cfg = *cfg;
    Box::new(move |pts: &[Point]| build_index(kind, pts, &cfg))
}

/// Builds an index of `kind` over `points` and starts a live
/// [`SpatialServer`] around it: lock-free snapshot reads, sequenced
/// delta-buffered writes, and background compaction that rebuilds through
/// the registry.
///
/// ```
/// use common::QueryContext;
/// use geom::Point;
/// use registry::{serve_index, IndexConfig, IndexKind, ServerConfig};
///
/// let points: Vec<Point> = (0..300)
///     .map(|i| Point::with_id((i as f64 * 0.618) % 1.0, (i as f64 * 0.414) % 1.0, i))
///     .collect();
/// let server = serve_index(IndexKind::Grid, &points, &IndexConfig::fast(), ServerConfig::default());
///
/// // Writers go through &self; readers snapshot concurrently.
/// let seq = server.insert(Point::with_id(0.123, 0.456, 9_000));
/// assert_eq!(seq, 1);
/// let mut cx = QueryContext::new();
/// let hit = server.point_query(&Point::new(0.123, 0.456), &mut cx);
/// assert_eq!(hit.map(|p| p.id), Some(9_000));
/// assert_eq!(server.len(), 301);
/// ```
pub fn serve_index(
    kind: IndexKind,
    points: &[Point],
    cfg: &IndexConfig,
    server_cfg: ServerConfig,
) -> SpatialServer {
    SpatialServer::new(points.to_vec(), rebuild_fn(kind, cfg), server_cfg)
}

/// Warm start: loads a snapshot (see [`load_index_bytes`]) and starts a live
/// [`SpatialServer`] around the loaded index, skipping the initial build.
///
/// The server needs the canonical point set for compaction; it is recovered
/// from the loaded index with a full-space window scan over the unit data
/// square (the repository's data convention).  Kinds whose window queries
/// are approximate (RSMI, ZM) may scan back fewer points than the index
/// holds — that is reported as [`PersistError::Corrupt`] rather than served
/// with silent point loss, so warm starts are for exact kinds.
pub fn serve_snapshot_bytes(
    bytes: &[u8],
    cfg: &IndexConfig,
    server_cfg: ServerConfig,
) -> Result<SpatialServer, PersistError> {
    let index = load_index_bytes(bytes)?;
    let kind: IndexKind = index
        .name()
        .parse()
        .map_err(|_| PersistError::UnknownKind(index.name().to_string()))?;
    let mut cx = common::QueryContext::new();
    let points = index.window_query(&geom::Rect::unit(), &mut cx);
    if points.len() != index.len() {
        return Err(PersistError::Corrupt(format!(
            "canonical scan recovered {} of {} points — warm start requires a kind whose \
             full-space window scan is exact",
            points.len(),
            index.len()
        )));
    }
    let n_points = points.len() as u64;
    let server = SpatialServer::from_parts(index, points, rebuild_fn(kind, cfg), server_cfg);
    server
        .telemetry()
        .journal
        .record(obs::EventKind::SnapshotLoad { points: n_points });
    Ok(server)
}

/// Warm start from a snapshot file (see [`serve_snapshot_bytes`]).
pub fn serve_snapshot(
    path: &Path,
    cfg: &IndexConfig,
    server_cfg: ServerConfig,
) -> Result<SpatialServer, PersistError> {
    serve_snapshot_bytes(&persist::read_file(path)?, cfg, server_cfg)
}

/// The unified-configuration serving entry: warm-starts from
/// [`ServeConfig::warm_start`] when that snapshot file exists, otherwise
/// builds an index of `kind` over `points` — exactly the decision the
/// `net-serve` CLI used to make by hand.  Network knobs in `cfg` are
/// consumed by `net::serve_config`, not here.
pub fn serve_config(
    kind: IndexKind,
    points: &[Point],
    cfg: &IndexConfig,
    serve: &ServeConfig,
) -> Result<SpatialServer, PersistError> {
    match &serve.warm_start {
        Some(path) if path.exists() => serve_snapshot(path, cfg, serve.server_config()),
        _ => Ok(serve_index(kind, points, cfg, serve.server_config())),
    }
}

// ---------------------------------------------------------------------
// Distributed serving: routing-table-only views of sharded snapshots
// ---------------------------------------------------------------------

/// Reads only the routing metadata of a sharded snapshot — the frozen
/// partitioner plus per-shard MBRs and key ranges — without parsing any
/// shard's data.  Returns the container's [`IndexKind`] alongside, so a
/// router knows which family (and exactness contract) its shard servers
/// hold.  Errors on non-sharded snapshots.
pub fn load_shard_manifest_bytes(
    bytes: &[u8],
) -> Result<(IndexKind, engine::ShardManifest), PersistError> {
    let (kind_tag, mut r) = persist::SnapshotReader::open(bytes)?;
    let kind: IndexKind = kind_tag
        .parse()
        .map_err(|_| PersistError::UnknownKind(kind_tag.clone()))?;
    if kind.base().is_none() {
        return Err(PersistError::Corrupt(format!(
            "'{kind_tag}' is not a sharded container — nothing to route to"
        )));
    }
    Ok((kind, engine::ShardManifest::read(&mut r)?))
}

/// Reads a sharded snapshot file's routing metadata (see
/// [`load_shard_manifest_bytes`]).
pub fn load_shard_manifest(
    path: &Path,
) -> Result<(IndexKind, engine::ShardManifest), PersistError> {
    load_shard_manifest_bytes(&persist::read_file(path)?)
}

/// Extracts one shard's embedded snapshot from a sharded container: a
/// complete, self-describing snapshot image a shard server can
/// [`load_index_bytes`] or [`serve_snapshot_bytes`] on its own.  Other
/// shards' bytes are skipped, never parsed.
pub fn load_shard_snapshot_bytes(bytes: &[u8], shard: usize) -> Result<Vec<u8>, PersistError> {
    let (kind_tag, mut r) = persist::SnapshotReader::open(bytes)?;
    let kind: IndexKind = kind_tag
        .parse()
        .map_err(|_| PersistError::UnknownKind(kind_tag.clone()))?;
    let expected = match kind.base() {
        Some(base) => base.unsharded(),
        None => {
            return Err(PersistError::Corrupt(format!(
                "'{kind_tag}' is not a sharded container — no shard {shard} to extract"
            )))
        }
    };
    let blob = engine::read_shard_snapshot_bytes(&mut r, shard)?;
    let (inner_tag, _) = persist::SnapshotReader::open(&blob)?;
    if inner_tag != expected.name() {
        return Err(PersistError::Corrupt(format!(
            "sharded container for {} holds a '{inner_tag}' shard",
            kind.name(),
        )));
    }
    Ok(blob)
}

/// Extracts one shard's embedded snapshot from a sharded snapshot file
/// (see [`load_shard_snapshot_bytes`]).
pub fn load_shard_snapshot(path: &Path, shard: usize) -> Result<Vec<u8>, PersistError> {
    load_shard_snapshot_bytes(&persist::read_file(path)?, shard)
}

#[cfg(test)]
mod tests {
    use super::*;
    use common::QueryContext;
    use datagen::{generate, Distribution};

    #[test]
    fn every_kind_builds_and_reports_its_name() {
        let data = generate(Distribution::Uniform, 400, 3);
        for kind in IndexKind::all() {
            let index = build_index(kind, &data, &IndexConfig::fast());
            assert_eq!(index.name(), kind.name());
            assert_eq!(index.len(), data.len());
        }
    }

    #[test]
    fn built_indices_answer_point_queries() {
        let data = generate(Distribution::Normal, 600, 5);
        let mut cx = QueryContext::new();
        for kind in IndexKind::all() {
            let index = build_index(kind, &data, &IndexConfig::fast());
            for p in data.iter().step_by(41) {
                assert_eq!(
                    index.point_query(p, &mut cx).map(|f| f.id),
                    Some(p.id),
                    "{} lost a point",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn kind_names_round_trip_through_from_str() {
        for kind in IndexKind::all_with_sharded() {
            let parsed: IndexKind = kind.name().parse().expect("parse display name");
            assert_eq!(parsed, kind);
        }
        assert_eq!("rstar".parse::<IndexKind>().unwrap(), IndexKind::RStar);
        assert_eq!(
            "sharded-rstar".parse::<IndexKind>().unwrap(),
            BaseKind::RStar.sharded()
        );
        assert!("nonsense".parse::<IndexKind>().is_err());
        assert!("sharded-nonsense".parse::<IndexKind>().is_err());
        assert!("sharded-sharded-rsmi".parse::<IndexKind>().is_err());
    }

    #[test]
    fn sharded_kinds_inherit_the_inner_family_contract() {
        for base in BaseKind::all() {
            let kind = base.sharded();
            assert_eq!(kind.base(), Some(base));
            assert_eq!(kind.exact_windows(), base.unsharded().exact_windows());
            assert_eq!(kind.exact_knn(), base.unsharded().exact_knn());
            assert_eq!(kind.is_learned(), base.unsharded().is_learned());
            assert!(kind.name().starts_with("Sharded-"));
        }
        assert_eq!(IndexKind::Rsmi.base(), None);
    }

    #[test]
    fn sharded_builds_route_point_queries_through_the_engine() {
        let data = generate(Distribution::skewed_default(), 900, 13);
        let cfg = IndexConfig::fast().with_shards(4);
        let index = build_index(BaseKind::Hrr.sharded(), &data, &cfg);
        assert_eq!(index.name(), "Sharded-HRR");
        assert_eq!(index.len(), data.len());
        let mut cx = QueryContext::new();
        for p in data.iter().step_by(31) {
            assert_eq!(index.point_query(p, &mut cx).map(|f| f.id), Some(p.id));
        }
        let stats = cx.take_stats();
        let n = data.iter().step_by(31).count() as u64;
        assert_eq!(stats.shards_visited, n, "point routing fanned out");
        assert_eq!(stats.shards_pruned, 3 * n);
    }

    #[test]
    fn every_kind_answers_range_and_join_exactly_through_the_registry() {
        // The exactness flags deliberately do NOT extend to the new query
        // classes: distance-range and join answers are exact for every
        // kind, including the approximate-window families.
        let data = generate(Distribution::Uniform, 500, 47);
        let inner = generate(Distribution::Uniform, 80, 49);
        let other = common::brute_force::ScanIndex::new(inner.clone());
        let mut cx = QueryContext::new();
        for kind in IndexKind::all_with_sharded() {
            let index = build_index(kind, &data, &IndexConfig::fast().with_shards(3));
            let c = data[11];
            let mut got: Vec<u64> = index
                .range_query(&c, 0.06, &mut cx)
                .iter()
                .map(|p| p.id)
                .collect();
            let mut truth: Vec<u64> = common::brute_force::range_query(&data, &c, 0.06)
                .iter()
                .map(|p| p.id)
                .collect();
            got.sort_unstable();
            truth.sort_unstable();
            assert_eq!(got, truth, "{} range answer differs", kind.name());
            assert_eq!(
                index.distance_join(&other, 0.02, &mut cx).len(),
                common::brute_force::distance_join(&data, &inner, 0.02).len(),
                "{} join pair count differs",
                kind.name()
            );
        }
    }

    #[test]
    fn exactness_flags_partition_the_families() {
        assert!(IndexKind::Grid.exact_windows());
        assert!(IndexKind::Rsmia.exact_windows());
        assert!(!IndexKind::Rsmi.exact_windows());
        assert!(!IndexKind::Zm.exact_knn());
        assert!(IndexKind::Rsmia.is_learned());
        assert!(!IndexKind::Kdb.is_learned());
    }

    #[test]
    fn learned_kinds_expose_model_counts_through_the_trait() {
        let data = generate(Distribution::Uniform, 1500, 7);
        for kind in IndexKind::all() {
            let index = build_index(kind, &data, &IndexConfig::fast());
            if kind.is_learned() {
                assert!(index.model_count() > 0, "{} has no models", kind.name());
            } else {
                assert_eq!(index.model_count(), 0, "{}", kind.name());
            }
        }
    }

    #[test]
    fn boxed_indices_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync + ?Sized>() {}
        assert_send_sync::<dyn SpatialIndex>();
        assert_send_sync::<Box<dyn SpatialIndex>>();
    }

    #[test]
    fn snapshot_bytes_roundtrip_through_the_kind_tag() {
        let data = generate(Distribution::Uniform, 600, 9);
        for kind in [IndexKind::Grid, IndexKind::Rsmi, BaseKind::Kdb.sharded()] {
            let index = build_index(kind, &data, &IndexConfig::fast().with_shards(3));
            let bytes = snapshot_bytes(index.as_ref()).expect("serialise");
            let loaded = load_index_bytes(&bytes).expect("load");
            assert_eq!(loaded.name(), kind.name());
            assert_eq!(loaded.len(), index.len());
            let mut cx = QueryContext::new();
            for p in data.iter().step_by(53) {
                assert_eq!(
                    loaded.point_query(p, &mut cx).map(|f| f.id),
                    Some(p.id),
                    "{} lost a point across the snapshot",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn save_and_load_roundtrip_through_a_file() {
        let data = generate(Distribution::Normal, 400, 21);
        let index = build_index(IndexKind::Hrr, &data, &IndexConfig::fast());
        let path = std::env::temp_dir().join(format!(
            "rsmi-registry-test-{}.snapshot",
            std::process::id()
        ));
        save_index(index.as_ref(), &path).expect("save");
        let loaded = load_index(&path).expect("load");
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.name(), "HRR");
        assert_eq!(loaded.len(), data.len());
    }

    #[test]
    fn loading_garbage_reports_typed_errors() {
        assert!(matches!(
            load_index_bytes(b"definitely not a snapshot"),
            Err(PersistError::BadMagic)
        ));
        assert!(matches!(
            load_index(Path::new("/nonexistent/rsmi.snapshot")),
            Err(PersistError::Io(_))
        ));
        // A valid header whose kind tag names no registered family.
        let w = persist::SnapshotWriter::new("NoSuchFamily");
        assert!(matches!(
            load_index_bytes(&w.finish()),
            Err(PersistError::UnknownKind(k)) if k == "NoSuchFamily"
        ));
    }

    #[test]
    fn serve_index_wraps_any_kind_with_live_writes() {
        let data = generate(Distribution::Uniform, 500, 33);
        let scfg = ServerConfig::default().with_auto_compact(false);
        for kind in [IndexKind::Hrr, BaseKind::Grid.sharded()] {
            let server = serve_index(kind, &data, &IndexConfig::fast().with_shards(3), scfg);
            let mut cx = QueryContext::new();
            assert_eq!(server.len(), data.len());
            let extra = Point::with_id(0.111, 0.222, 700_000);
            server.insert(extra);
            let (removed, _) = server.delete(&data[5]);
            assert!(removed);
            assert_eq!(
                server.point_query(&extra, &mut cx).map(|p| p.id),
                Some(extra.id)
            );
            assert!(server.point_query(&data[5], &mut cx).is_none());
            // Compaction rebuilds through the registry and preserves answers.
            assert!(server.compact_now());
            assert_eq!(server.stats().epoch, 1);
            assert_eq!(
                server.point_query(&extra, &mut cx).map(|p| p.id),
                Some(extra.id)
            );
            assert!(server.point_query(&data[5], &mut cx).is_none());
            assert_eq!(server.len(), data.len());
        }
    }

    #[test]
    fn serve_index_maintains_learned_kinds_incrementally() {
        let data = generate(Distribution::Uniform, 800, 39);
        let scfg = ServerConfig::default().with_auto_compact(false);
        for kind in [IndexKind::Rsmi, IndexKind::Rsmia] {
            let server = serve_index(kind, &data, &IndexConfig::fast(), scfg);
            let mut cx = QueryContext::new();
            let mut inserted = Vec::new();
            let mut deleted = Vec::new();
            for i in 0..60u64 {
                let p = Point::with_id(
                    (0.013 * i as f64) % 1.0,
                    (0.029 * i as f64) % 1.0,
                    800_000 + i,
                );
                server.insert(p);
                inserted.push(p);
                if i % 5 == 0 {
                    // Skip index 0: its id is 0, the trait-level wildcard.
                    let victim = data[1 + (i as usize * 11) % (data.len() - 1)];
                    if server.delete(&victim).0 {
                        deleted.push(victim);
                    }
                }
            }
            assert!(server.maintain_now());
            let stats = server.stats();
            assert_eq!(
                stats.partial_compactions, 1,
                "{kind:?} did not run a partial pass"
            );
            // The partially rebuilt base still answers exactly.
            for p in &inserted {
                assert_eq!(server.point_query(p, &mut cx).map(|f| f.id), Some(p.id));
            }
            for p in &deleted {
                assert!(server.point_query(p, &mut cx).is_none());
            }
        }
    }

    #[test]
    fn serve_snapshot_bytes_warm_starts_exact_kinds() {
        let data = generate(Distribution::Normal, 400, 35);
        let cfg = IndexConfig::fast();
        let index = build_index(IndexKind::Kdb, &data, &cfg);
        let bytes = snapshot_bytes(index.as_ref()).expect("serialise");
        let scfg = ServerConfig::default().with_auto_compact(false);
        let server = serve_snapshot_bytes(&bytes, &cfg, scfg).expect("warm start");
        assert_eq!(server.len(), data.len());
        let mut cx = QueryContext::new();
        assert_eq!(
            server.point_query(&data[9], &mut cx).map(|p| p.id),
            Some(data[9].id)
        );
        // The warm-started server still compacts: writes fold into a fresh
        // base built by the registry.
        server.insert(Point::with_id(0.4321, 0.1234, 900_000));
        assert!(server.compact_now());
        assert_eq!(server.len(), data.len() + 1);

        // Garbage bytes surface the persist error, not a panic.
        assert!(matches!(
            serve_snapshot_bytes(b"garbage", &cfg, scfg),
            Err(PersistError::BadMagic)
        ));
    }
}
