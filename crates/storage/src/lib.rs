//! Block storage layer.
//!
//! The paper stores data points in external-memory style *blocks* of capacity
//! `B` (100 in all experiments) and reports the number of block accesses per
//! query as the I/O cost proxy — all indices, learned and traditional, sit on
//! top of the same block abstraction.  This crate provides that abstraction:
//!
//! * [`Block`] — a fixed-capacity container of points with `prev`/`next`
//!   links so that consecutive blocks can be scanned like a linked list
//!   (Fig. 4 of the paper), stored struct-of-arrays (separate `x`/`y`/`id`
//!   lanes),
//! * [`BlockStore`] — an arena of blocks,
//! * [`kernels`] — chunked, autovectorizable scan kernels (batch
//!   rect-contains, batch distance-squared, branchless MINDIST, candidate
//!   filters) shared by every block-backed query path.
//!
//! Everything is kept in main memory, exactly as in the paper's experimental
//! setup ("We run all indices and algorithms in main memory for ease of
//! comparison"); block accesses are what an external-memory deployment would
//! pay.  Access *accounting* lives with the queries, not here: query code
//! charges each modelled I/O to its `common::QueryContext`, so the store
//! stays free of interior mutability and indices built on it are `Sync`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
pub mod kernels;
mod snapshot;
mod store;

pub use block::{Block, BlockId};
pub use snapshot::{SECTION_STORE_V1, SECTION_STORE_V2};
pub use store::BlockStore;

/// The block capacity used throughout the paper's experiments (`B = 100`).
pub const DEFAULT_BLOCK_CAPACITY: usize = 100;
