//! The block arena.

use crate::block::{Block, BlockId};
use geom::Point;
use std::ops::Range;

/// An arena of fixed-capacity blocks.
///
/// Blocks are addressed by [`BlockId`]; the store never reuses IDs, so a
/// block ID handed out during bulk-loading stays valid across insertions and
/// deletions (deleted points simply leave free slots, as in §5 of the paper).
///
/// The store itself does **no** access accounting: query code charges block
/// reads to its `QueryContext` (`common::QueryContext`), which keeps the
/// store free of interior mutability and therefore `Sync`.
#[derive(Debug, Clone)]
pub struct BlockStore {
    blocks: Vec<Block>,
    capacity: usize,
}

impl BlockStore {
    /// Creates an empty store whose blocks will have capacity `capacity`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "block capacity must be positive");
        Self {
            blocks: Vec::new(),
            capacity,
        }
    }

    /// The block capacity `B`.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of blocks allocated so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether no blocks have been allocated.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Total number of live points across all blocks.
    pub fn total_points(&self) -> usize {
        self.blocks.iter().map(Block::len).sum()
    }

    /// Allocates a new empty block and returns its ID.
    pub fn allocate(&mut self) -> BlockId {
        let id = self.blocks.len();
        self.blocks.push(Block::new(self.capacity));
        id
    }

    /// Shared access to a block.  Query code that models this as an I/O must
    /// charge it to its `QueryContext` (`count_block`); maintenance reads
    /// (MBR recomputation, rebuilds) go uncharged, as in the paper.
    #[inline]
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id]
    }

    /// Mutable access to a block.
    #[inline]
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id]
    }

    /// Packs `points`, already sorted in the desired order, into consecutive
    /// blocks of capacity `B`, linking them `prev`/`next` and to the block
    /// preceding the packed range (if any).
    ///
    /// Returns the range of block IDs created.  This implements the packing
    /// step of the paper's Equation 1: the `i`-th point (0-based rank) lands
    /// in local block `i / B`.
    pub fn pack(&mut self, points: &[Point]) -> Range<BlockId> {
        let start = self.blocks.len();
        if points.is_empty() {
            return start..start;
        }
        for chunk in points.chunks(self.capacity) {
            let id = self.allocate();
            for &p in chunk {
                self.blocks[id].push(p);
            }
        }
        let end = self.blocks.len();
        for id in start..end {
            if id > start {
                self.blocks[id].set_prev(Some(id - 1));
            } else if start > 0 {
                // Link the first packed block after the previously packed
                // range so the global chain stays connected.
                self.blocks[id].set_prev(Some(start - 1));
                self.blocks[start - 1].set_next(Some(id));
            }
            if id + 1 < end {
                self.blocks[id].set_next(Some(id + 1));
            }
        }
        start..end
    }

    /// Creates a new overflow block and splices it into the chain directly
    /// after `after` (the insertion strategy of §5).  Returns its ID.
    pub fn insert_overflow_after(&mut self, after: BlockId) -> BlockId {
        let id = self.allocate();
        let old_next = self.blocks[after].next();
        self.blocks[id].set_overflow(true);
        self.blocks[id].set_prev(Some(after));
        self.blocks[id].set_next(old_next);
        self.blocks[after].set_next(Some(id));
        if let Some(n) = old_next {
            self.blocks[n].set_prev(Some(id));
        }
        id
    }

    /// Follows `next` links starting at `id` (inclusive) and returns the IDs
    /// of `id` plus all *overflow* blocks chained immediately after it.
    ///
    /// Query algorithms use this to extend a predicted block with the blocks
    /// created by insertions, which are excluded from the error bounds.
    pub fn overflow_chain(&self, id: BlockId) -> Vec<BlockId> {
        let mut ids = vec![id];
        let mut cur = self.blocks[id].next();
        while let Some(n) = cur {
            if !self.blocks[n].is_overflow() {
                break;
            }
            ids.push(n);
            cur = self.blocks[n].next();
        }
        ids
    }

    /// Iterates over all blocks (used by rebuild and verification code).
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks.iter().enumerate()
    }

    /// Approximate total size of all blocks in bytes.
    pub fn size_bytes(&self) -> usize {
        self.blocks.iter().map(Block::size_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| Point::with_id(i as f64 / n as f64, i as f64 / n as f64, i as u64))
            .collect()
    }

    #[test]
    fn pack_creates_ceil_n_over_b_blocks() {
        let mut store = BlockStore::new(10);
        let range = store.pack(&pts(25));
        assert_eq!(range, 0..3);
        assert_eq!(store.block(0).len(), 10);
        assert_eq!(store.block(1).len(), 10);
        assert_eq!(store.block(2).len(), 5);
        assert_eq!(store.total_points(), 25);
    }

    #[test]
    fn pack_links_blocks_in_order() {
        let mut store = BlockStore::new(4);
        store.pack(&pts(12));
        assert_eq!(store.block(0).prev(), None);
        assert_eq!(store.block(0).next(), Some(1));
        assert_eq!(store.block(1).prev(), Some(0));
        assert_eq!(store.block(1).next(), Some(2));
        assert_eq!(store.block(2).next(), None);
    }

    #[test]
    fn consecutive_pack_calls_stay_chained() {
        let mut store = BlockStore::new(4);
        let first = store.pack(&pts(8));
        let second = store.pack(&pts(4));
        assert_eq!(first, 0..2);
        assert_eq!(second, 2..3);
        assert_eq!(store.block(1).next(), Some(2));
        assert_eq!(store.block(2).prev(), Some(1));
    }

    #[test]
    fn pack_empty_returns_empty_range() {
        let mut store = BlockStore::new(4);
        let r = store.pack(&[]);
        assert!(r.is_empty());
        assert_eq!(store.len(), 0);
    }

    #[test]
    fn insert_overflow_after_splices_the_chain() {
        let mut store = BlockStore::new(4);
        store.pack(&pts(8)); // blocks 0 and 1
        let ov = store.insert_overflow_after(0);
        assert_eq!(ov, 2);
        assert!(store.block(ov).is_overflow());
        assert_eq!(store.block(0).next(), Some(ov));
        assert_eq!(store.block(ov).prev(), Some(0));
        assert_eq!(store.block(ov).next(), Some(1));
        assert_eq!(store.block(1).prev(), Some(ov));
    }

    #[test]
    fn overflow_chain_returns_base_plus_overflow_blocks_only() {
        let mut store = BlockStore::new(2);
        store.pack(&pts(4)); // blocks 0 and 1
        let ov1 = store.insert_overflow_after(0);
        let ov2 = store.insert_overflow_after(ov1);
        assert_eq!(store.overflow_chain(0), vec![0, ov1, ov2]);
        // block 1 is a regular block, so the chain from it stops immediately.
        assert_eq!(store.overflow_chain(1), vec![1]);
    }

    #[test]
    fn size_bytes_scales_with_block_count() {
        let mut store = BlockStore::new(10);
        store.pack(&pts(25));
        let one = store.block(0).size_bytes();
        assert_eq!(store.size_bytes(), 3 * one);
    }

    #[test]
    fn block_store_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BlockStore>();
    }
}
