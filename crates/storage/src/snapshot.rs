//! Snapshot encoding of the block layer: every block's points, its
//! `prev`/`next` chain links, and its overflow flag, so a reloaded store is
//! bit-for-bit the store that was saved (block IDs included — query code
//! holds IDs in its directory structures).

use crate::{Block, BlockStore};
use persist::{PersistError, SnapshotReader, SnapshotWriter};

/// Section tag of the block-store record.
pub const SECTION_STORE: u32 = 0x5301;

impl BlockStore {
    /// Writes the store as one checksummed section: capacity, then every
    /// block in ID order (points, chain links, overflow flag).
    pub fn write_snapshot(&self, w: &mut SnapshotWriter) {
        w.begin_section(SECTION_STORE);
        w.put_usize(self.capacity());
        w.put_usize(self.len());
        for (_, block) in self.iter() {
            w.put_usize(block.len());
            for p in block.points() {
                w.put_point(p);
            }
            w.put_opt_usize(block.prev());
            w.put_opt_usize(block.next());
            w.put_bool(block.is_overflow());
        }
        w.end_section();
    }

    /// Reads a store section written by [`BlockStore::write_snapshot`],
    /// validating occupancy and chain links against the block count.
    pub fn read_snapshot(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        r.begin_section(SECTION_STORE)?;
        let capacity = r.get_usize()?;
        if capacity == 0 {
            return Err(PersistError::Corrupt("zero block capacity".into()));
        }
        let n_blocks = r.get_len(1)?;
        let mut store = BlockStore::new(capacity);
        for id in 0..n_blocks {
            let len = r.get_len(24)?;
            if len > capacity {
                return Err(PersistError::Corrupt(format!(
                    "block {id} holds {len} points but capacity is {capacity}"
                )));
            }
            let bid = store.allocate();
            for _ in 0..len {
                let p = r.get_point()?;
                store.block_mut(bid).push(p);
            }
            let prev = checked_link(r.get_opt_usize()?, n_blocks, id, "prev")?;
            let next = checked_link(r.get_opt_usize()?, n_blocks, id, "next")?;
            let overflow = r.get_bool()?;
            let block: &mut Block = store.block_mut(bid);
            block.set_prev(prev);
            block.set_next(next);
            block.set_overflow(overflow);
        }
        r.end_section()?;
        Ok(store)
    }
}

fn checked_link(
    link: Option<usize>,
    n_blocks: usize,
    id: usize,
    which: &str,
) -> Result<Option<usize>, PersistError> {
    match link {
        Some(target) if target >= n_blocks => Err(PersistError::Corrupt(format!(
            "block {id} links {which} to nonexistent block {target}"
        ))),
        other => Ok(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::Point;

    fn pts(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| Point::with_id(i as f64 / n as f64, 1.0 - i as f64 / n as f64, i as u64))
            .collect()
    }

    fn roundtrip(store: &BlockStore) -> BlockStore {
        let mut w = SnapshotWriter::new("Store");
        store.write_snapshot(&mut w);
        let bytes = w.finish();
        let (_, mut r) = SnapshotReader::open(&bytes).unwrap();
        BlockStore::read_snapshot(&mut r).unwrap()
    }

    #[test]
    fn packed_store_roundtrips_blocks_links_and_points() {
        let mut store = BlockStore::new(4);
        store.pack(&pts(10));
        let loaded = roundtrip(&store);
        assert_eq!(loaded.capacity(), 4);
        assert_eq!(loaded.len(), store.len());
        assert_eq!(loaded.total_points(), 10);
        for (id, block) in store.iter() {
            let l = loaded.block(id);
            assert_eq!(l.points(), block.points());
            assert_eq!(l.prev(), block.prev());
            assert_eq!(l.next(), block.next());
            assert_eq!(l.is_overflow(), block.is_overflow());
        }
    }

    #[test]
    fn overflow_chains_survive_the_roundtrip() {
        let mut store = BlockStore::new(2);
        store.pack(&pts(4));
        let ov = store.insert_overflow_after(0);
        store.block_mut(ov).push(Point::with_id(0.5, 0.5, 99));
        let loaded = roundtrip(&store);
        assert_eq!(loaded.overflow_chain(0), store.overflow_chain(0));
        assert!(loaded.block(ov).is_overflow());
    }

    #[test]
    fn empty_store_roundtrips() {
        let store = BlockStore::new(7);
        let loaded = roundtrip(&store);
        assert_eq!(loaded.capacity(), 7);
        assert!(loaded.is_empty());
    }

    #[test]
    fn overfull_block_is_corrupt_not_panic() {
        // Hand-craft a section claiming 5 points in a capacity-2 block.
        let mut w = SnapshotWriter::new("Store");
        w.begin_section(SECTION_STORE);
        w.put_usize(2); // capacity
        w.put_usize(1); // one block
        w.put_usize(5); // five points: impossible
        for p in pts(5) {
            w.put_point(&p);
        }
        w.put_opt_usize(None);
        w.put_opt_usize(None);
        w.put_bool(false);
        w.end_section();
        let bytes = w.finish();
        let (_, mut r) = SnapshotReader::open(&bytes).unwrap();
        assert!(matches!(
            BlockStore::read_snapshot(&mut r),
            Err(PersistError::Corrupt(_))
        ));
    }

    #[test]
    fn dangling_chain_link_is_corrupt() {
        let mut w = SnapshotWriter::new("Store");
        w.begin_section(SECTION_STORE);
        w.put_usize(2);
        w.put_usize(1);
        w.put_usize(0);
        w.put_opt_usize(Some(17)); // prev points past the end
        w.put_opt_usize(None);
        w.put_bool(false);
        w.end_section();
        let bytes = w.finish();
        let (_, mut r) = SnapshotReader::open(&bytes).unwrap();
        assert!(matches!(
            BlockStore::read_snapshot(&mut r),
            Err(PersistError::Corrupt(_))
        ));
    }
}
