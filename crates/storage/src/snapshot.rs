//! Snapshot encoding of the block layer: every block's points, its
//! `prev`/`next` chain links, and its overflow flag, so a reloaded store is
//! bit-for-bit the store that was saved (block IDs included — query code
//! holds IDs in its directory structures).
//!
//! Two section versions exist:
//!
//! * [`SECTION_STORE_V1`] (`0x5301`) — the original array-of-structs layout
//!   (one interleaved `Point` record per point).  Still **read** for
//!   compatibility with pre-rewrite snapshots; never written.
//! * [`SECTION_STORE_V2`] (`0x5302`) — the struct-of-arrays layout matching
//!   the in-memory [`Block`] lanes: per block, the whole `x` lane, then the
//!   `y` lane, then the `id` lane, each length-prefixed.  This is what
//!   [`BlockStore::write_snapshot`] emits; lanes serialise and deserialise
//!   as contiguous runs.
//!
//! [`BlockStore::read_snapshot`] peeks the section tag and dispatches, so a
//! v1 snapshot loads into the SoA store via conversion and replays
//! byte-identically (`tests/snapshot_compat.rs` polices this).

use crate::{Block, BlockStore};
use persist::{PersistError, SnapshotReader, SnapshotWriter};

/// Section tag of the legacy array-of-structs block-store record (read-only).
pub const SECTION_STORE_V1: u32 = 0x5301;

/// Section tag of the struct-of-arrays block-store record.
pub const SECTION_STORE_V2: u32 = 0x5302;

impl BlockStore {
    /// Writes the store as one checksummed v2 (struct-of-arrays) section:
    /// capacity, then every block in ID order (coordinate/id lanes, chain
    /// links, overflow flag).
    pub fn write_snapshot(&self, w: &mut SnapshotWriter) {
        w.begin_section(SECTION_STORE_V2);
        w.put_usize(self.capacity());
        w.put_usize(self.len());
        for (_, block) in self.iter() {
            w.put_f64s(block.xs());
            w.put_f64s(block.ys());
            w.put_u64s(block.ids());
            w.put_opt_usize(block.prev());
            w.put_opt_usize(block.next());
            w.put_bool(block.is_overflow());
        }
        w.end_section();
    }

    /// Reads a store section in either version, validating capacity,
    /// occupancy, and chain links against the block count.  A zero or
    /// oversold capacity surfaces as [`PersistError::Corrupt`] — never a
    /// panic — because snapshot bytes are untrusted input.
    pub fn read_snapshot(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        match r.peek_section_tag()? {
            SECTION_STORE_V1 => Self::read_snapshot_v1(r),
            _ => Self::read_snapshot_v2(r),
        }
    }

    /// Reads the current struct-of-arrays section.
    fn read_snapshot_v2(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        r.begin_section(SECTION_STORE_V2)?;
        let capacity = r.get_usize()?;
        if capacity == 0 {
            return Err(PersistError::Corrupt("zero block capacity".into()));
        }
        let n_blocks = r.get_len(1)?;
        let mut store = BlockStore::new(capacity);
        for id in 0..n_blocks {
            let xs = r.get_f64s()?;
            let ys = r.get_f64s()?;
            let ids = r.get_u64s()?;
            if xs.len() != ys.len() || xs.len() != ids.len() {
                return Err(PersistError::Corrupt(format!(
                    "block {id} lanes disagree: {} xs, {} ys, {} ids",
                    xs.len(),
                    ys.len(),
                    ids.len()
                )));
            }
            if xs.len() > capacity {
                return Err(PersistError::Corrupt(format!(
                    "block {id} holds {} points but capacity is {capacity}",
                    xs.len()
                )));
            }
            let bid = store.allocate();
            for i in 0..xs.len() {
                store
                    .block_mut(bid)
                    .push(geom::Point::with_id(xs[i], ys[i], ids[i]));
            }
            read_block_tail(r, store.block_mut(bid), n_blocks, id)?;
        }
        r.end_section()?;
        Ok(store)
    }

    /// Reads a legacy array-of-structs section, converting to lanes.
    fn read_snapshot_v1(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        r.begin_section(SECTION_STORE_V1)?;
        let capacity = r.get_usize()?;
        if capacity == 0 {
            return Err(PersistError::Corrupt("zero block capacity".into()));
        }
        let n_blocks = r.get_len(1)?;
        let mut store = BlockStore::new(capacity);
        for id in 0..n_blocks {
            let len = r.get_len(24)?;
            if len > capacity {
                return Err(PersistError::Corrupt(format!(
                    "block {id} holds {len} points but capacity is {capacity}"
                )));
            }
            let bid = store.allocate();
            for _ in 0..len {
                let p = r.get_point()?;
                store.block_mut(bid).push(p);
            }
            read_block_tail(r, store.block_mut(bid), n_blocks, id)?;
        }
        r.end_section()?;
        Ok(store)
    }
}

/// Reads the per-block suffix shared by both section versions: chain links
/// (validated against the block count) and the overflow flag.
fn read_block_tail(
    r: &mut SnapshotReader<'_>,
    block: &mut Block,
    n_blocks: usize,
    id: usize,
) -> Result<(), PersistError> {
    let prev = checked_link(r.get_opt_usize()?, n_blocks, id, "prev")?;
    let next = checked_link(r.get_opt_usize()?, n_blocks, id, "next")?;
    let overflow = r.get_bool()?;
    block.set_prev(prev);
    block.set_next(next);
    block.set_overflow(overflow);
    Ok(())
}

fn checked_link(
    link: Option<usize>,
    n_blocks: usize,
    id: usize,
    which: &str,
) -> Result<Option<usize>, PersistError> {
    match link {
        Some(target) if target >= n_blocks => Err(PersistError::Corrupt(format!(
            "block {id} links {which} to nonexistent block {target}"
        ))),
        other => Ok(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::Point;

    fn pts(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| Point::with_id(i as f64 / n as f64, 1.0 - i as f64 / n as f64, i as u64))
            .collect()
    }

    fn roundtrip(store: &BlockStore) -> BlockStore {
        let mut w = SnapshotWriter::new("Store");
        store.write_snapshot(&mut w);
        let bytes = w.finish();
        let (_, mut r) = SnapshotReader::open(&bytes).unwrap();
        BlockStore::read_snapshot(&mut r).unwrap()
    }

    /// Writes a store the way the pre-rewrite (v1, array-of-structs) writer
    /// did, so the conversion path stays covered even though the writer is
    /// gone.
    fn write_v1(store: &BlockStore, w: &mut SnapshotWriter) {
        w.begin_section(SECTION_STORE_V1);
        w.put_usize(store.capacity());
        w.put_usize(store.len());
        for (_, block) in store.iter() {
            w.put_usize(block.len());
            for p in block.iter_points() {
                w.put_point(&p);
            }
            w.put_opt_usize(block.prev());
            w.put_opt_usize(block.next());
            w.put_bool(block.is_overflow());
        }
        w.end_section();
    }

    fn assert_stores_equal(a: &BlockStore, b: &BlockStore) {
        assert_eq!(a.capacity(), b.capacity());
        assert_eq!(a.len(), b.len());
        for (id, block) in a.iter() {
            let l = b.block(id);
            assert_eq!(l.to_points(), block.to_points());
            assert_eq!(l.prev(), block.prev());
            assert_eq!(l.next(), block.next());
            assert_eq!(l.is_overflow(), block.is_overflow());
        }
    }

    #[test]
    fn packed_store_roundtrips_blocks_links_and_points() {
        let mut store = BlockStore::new(4);
        store.pack(&pts(10));
        let loaded = roundtrip(&store);
        assert_eq!(loaded.total_points(), 10);
        assert_stores_equal(&store, &loaded);
    }

    #[test]
    fn v2_sections_roundtrip_byte_identically() {
        let mut store = BlockStore::new(4);
        store.pack(&pts(10));
        let mut w = SnapshotWriter::new("Store");
        store.write_snapshot(&mut w);
        let first = w.finish();
        let (_, mut r) = SnapshotReader::open(&first).unwrap();
        let loaded = BlockStore::read_snapshot(&mut r).unwrap();
        let mut w = SnapshotWriter::new("Store");
        loaded.write_snapshot(&mut w);
        assert_eq!(first, w.finish(), "save -> load -> save must be stable");
    }

    #[test]
    fn legacy_v1_sections_load_via_conversion() {
        let mut store = BlockStore::new(4);
        store.pack(&pts(11));
        let ov = store.insert_overflow_after(1);
        store.block_mut(ov).push(Point::with_id(0.5, 0.5, 99));
        let mut w = SnapshotWriter::new("Store");
        write_v1(&store, &mut w);
        let bytes = w.finish();
        let (_, mut r) = SnapshotReader::open(&bytes).unwrap();
        let loaded = BlockStore::read_snapshot(&mut r).unwrap();
        assert_stores_equal(&store, &loaded);
        assert_eq!(loaded.overflow_chain(1), store.overflow_chain(1));
    }

    #[test]
    fn overflow_chains_survive_the_roundtrip() {
        let mut store = BlockStore::new(2);
        store.pack(&pts(4));
        let ov = store.insert_overflow_after(0);
        store.block_mut(ov).push(Point::with_id(0.5, 0.5, 99));
        let loaded = roundtrip(&store);
        assert_eq!(loaded.overflow_chain(0), store.overflow_chain(0));
        assert!(loaded.block(ov).is_overflow());
    }

    #[test]
    fn empty_store_roundtrips() {
        let store = BlockStore::new(7);
        let loaded = roundtrip(&store);
        assert_eq!(loaded.capacity(), 7);
        assert!(loaded.is_empty());
    }

    #[test]
    fn zero_capacity_is_corrupt_not_panic_in_both_versions() {
        for tag in [SECTION_STORE_V1, SECTION_STORE_V2] {
            let mut w = SnapshotWriter::new("Store");
            w.begin_section(tag);
            w.put_usize(0); // capacity 0: would assert in Block::new
            w.put_usize(0); // no blocks
            w.end_section();
            let bytes = w.finish();
            let (_, mut r) = SnapshotReader::open(&bytes).unwrap();
            match BlockStore::read_snapshot(&mut r) {
                Err(PersistError::Corrupt(msg)) => {
                    assert!(msg.contains("capacity"), "tag 0x{tag:04x}: {msg}")
                }
                other => panic!("tag 0x{tag:04x}: expected Corrupt, got {other:?}"),
            }
        }
    }

    #[test]
    fn overfull_block_is_corrupt_not_panic() {
        // Hand-craft a v2 section claiming 5 points in a capacity-2 block.
        let mut w = SnapshotWriter::new("Store");
        w.begin_section(SECTION_STORE_V2);
        w.put_usize(2); // capacity
        w.put_usize(1); // one block
        let five = pts(5);
        w.put_f64s(&five.iter().map(|p| p.x).collect::<Vec<_>>());
        w.put_f64s(&five.iter().map(|p| p.y).collect::<Vec<_>>());
        w.put_u64s(&five.iter().map(|p| p.id).collect::<Vec<_>>());
        w.put_opt_usize(None);
        w.put_opt_usize(None);
        w.put_bool(false);
        w.end_section();
        let bytes = w.finish();
        let (_, mut r) = SnapshotReader::open(&bytes).unwrap();
        assert!(matches!(
            BlockStore::read_snapshot(&mut r),
            Err(PersistError::Corrupt(_))
        ));
    }

    #[test]
    fn disagreeing_lanes_are_corrupt() {
        let mut w = SnapshotWriter::new("Store");
        w.begin_section(SECTION_STORE_V2);
        w.put_usize(4);
        w.put_usize(1);
        w.put_f64s(&[0.1, 0.2]);
        w.put_f64s(&[0.3]); // one y short
        w.put_u64s(&[1, 2]);
        w.put_opt_usize(None);
        w.put_opt_usize(None);
        w.put_bool(false);
        w.end_section();
        let bytes = w.finish();
        let (_, mut r) = SnapshotReader::open(&bytes).unwrap();
        assert!(matches!(
            BlockStore::read_snapshot(&mut r),
            Err(PersistError::Corrupt(_))
        ));
    }

    #[test]
    fn dangling_chain_link_is_corrupt() {
        let mut w = SnapshotWriter::new("Store");
        w.begin_section(SECTION_STORE_V2);
        w.put_usize(2);
        w.put_usize(1);
        w.put_f64s(&[]);
        w.put_f64s(&[]);
        w.put_u64s(&[]);
        w.put_opt_usize(Some(17)); // prev points past the end
        w.put_opt_usize(None);
        w.put_bool(false);
        w.end_section();
        let bytes = w.finish();
        let (_, mut r) = SnapshotReader::open(&bytes).unwrap();
        assert!(matches!(
            BlockStore::read_snapshot(&mut r),
            Err(PersistError::Corrupt(_))
        ));
    }
}
