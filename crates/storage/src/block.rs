//! A single data block.

use geom::{Point, Rect};

/// Identifier of a block within a [`crate::BlockStore`].
pub type BlockId = usize;

/// A fixed-capacity block of data points.
///
/// Blocks are chained with `prev`/`next` pointers in curve-value order so
/// that window queries can scan a contiguous range of blocks (§3.2).  Blocks
/// created by insertions after bulk-loading are flagged with
/// [`Block::is_overflow`] so that they "do not count towards the error
/// bounds" (§5): query algorithms treat them as extensions of their
/// predecessor block.
#[derive(Debug, Clone)]
pub struct Block {
    entries: Vec<Point>,
    capacity: usize,
    prev: Option<BlockId>,
    next: Option<BlockId>,
    overflow: bool,
}

impl Block {
    /// Creates an empty block with the given capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "block capacity must be positive");
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
            prev: None,
            next: None,
            overflow: false,
        }
    }

    /// Number of live points in the block.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the block holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the block is at capacity.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// The block's configured capacity (`B`).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether this block was created by an insertion after bulk-loading.
    #[inline]
    pub fn is_overflow(&self) -> bool {
        self.overflow
    }

    /// Marks the block as an insertion-created overflow block.
    #[inline]
    pub fn set_overflow(&mut self, overflow: bool) {
        self.overflow = overflow;
    }

    /// ID of the preceding block in curve order, if any.
    #[inline]
    pub fn prev(&self) -> Option<BlockId> {
        self.prev
    }

    /// ID of the following block in curve order, if any.
    #[inline]
    pub fn next(&self) -> Option<BlockId> {
        self.next
    }

    /// Sets the predecessor link.
    #[inline]
    pub fn set_prev(&mut self, prev: Option<BlockId>) {
        self.prev = prev;
    }

    /// Sets the successor link.
    #[inline]
    pub fn set_next(&mut self, next: Option<BlockId>) {
        self.next = next;
    }

    /// Appends a point.
    ///
    /// # Panics
    /// Panics if the block is full; callers are expected to check
    /// [`Block::is_full`] and allocate an overflow block instead.
    pub fn push(&mut self, p: Point) {
        assert!(!self.is_full(), "push into a full block");
        self.entries.push(p);
    }

    /// The points currently stored in the block.
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.entries
    }

    /// Removes the point with the given id, swapping in the last entry
    /// (the paper's deletion strategy: "swap p with the last point in this
    /// block and mark p as deleted").  Returns the removed point.
    pub fn remove_by_id(&mut self, id: u64) -> Option<Point> {
        let pos = self.entries.iter().position(|p| p.id == id)?;
        Some(self.entries.swap_remove(pos))
    }

    /// Finds a point with exactly the given coordinates.
    pub fn find_at(&self, x: f64, y: f64) -> Option<&Point> {
        self.entries.iter().find(|p| p.x == x && p.y == y)
    }

    /// The minimum bounding rectangle of the block's points (empty rectangle
    /// for an empty block).
    pub fn mbr(&self) -> Rect {
        let mut r = Rect::empty();
        for p in &self.entries {
            r.expand_to_point(*p);
        }
        r
    }

    /// Approximate in-memory size of the block in bytes, for index-size
    /// accounting.  The fixed capacity is charged even when the block is not
    /// full, mirroring an on-disk page.
    pub fn size_bytes(&self) -> usize {
        self.capacity * std::mem::size_of::<Point>() + 4 * std::mem::size_of::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_until_full_then_panic() {
        let mut b = Block::new(3);
        b.push(Point::new(0.1, 0.1));
        b.push(Point::new(0.2, 0.2));
        b.push(Point::new(0.3, 0.3));
        assert!(b.is_full());
        let result = std::panic::catch_unwind(move || {
            let mut b = b;
            b.push(Point::new(0.4, 0.4));
        });
        assert!(result.is_err());
    }

    #[test]
    fn remove_by_id_frees_space() {
        let mut b = Block::new(2);
        b.push(Point::with_id(0.1, 0.1, 7));
        b.push(Point::with_id(0.2, 0.2, 8));
        assert!(b.is_full());
        let removed = b.remove_by_id(7).unwrap();
        assert_eq!(removed.id, 7);
        assert!(!b.is_full());
        assert_eq!(b.len(), 1);
        assert!(b.remove_by_id(99).is_none());
    }

    #[test]
    fn find_at_matches_exact_coordinates() {
        let mut b = Block::new(4);
        b.push(Point::with_id(0.25, 0.75, 3));
        assert_eq!(b.find_at(0.25, 0.75).unwrap().id, 3);
        assert!(b.find_at(0.25, 0.7500001).is_none());
    }

    #[test]
    fn mbr_covers_all_points_and_empty_block_has_empty_mbr() {
        let mut b = Block::new(4);
        assert!(b.mbr().is_empty());
        b.push(Point::new(0.2, 0.8));
        b.push(Point::new(0.6, 0.1));
        let m = b.mbr();
        assert_eq!(m, Rect::new(0.2, 0.1, 0.6, 0.8));
    }

    #[test]
    fn links_and_overflow_flag_roundtrip() {
        let mut b = Block::new(2);
        assert_eq!(b.prev(), None);
        assert_eq!(b.next(), None);
        b.set_prev(Some(5));
        b.set_next(Some(7));
        b.set_overflow(true);
        assert_eq!(b.prev(), Some(5));
        assert_eq!(b.next(), Some(7));
        assert!(b.is_overflow());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_is_rejected() {
        let _ = Block::new(0);
    }
}
