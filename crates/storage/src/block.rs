//! A single data block, stored struct-of-arrays.

use crate::kernels;
use geom::{Point, Rect};

/// Identifier of a block within a [`crate::BlockStore`].
pub type BlockId = usize;

/// A fixed-capacity block of data points, stored as separate `x`/`y`/`id`
/// lanes (struct-of-arrays) so the scan kernels in [`crate::kernels`] read
/// contiguous coordinate arrays instead of striding over interleaved
/// `Point`s.  The two coordinate lanes share one fixed allocation
/// (`x` lane at `coords[..capacity]`, `y` lane at `coords[capacity..]`):
/// tree-shaped families visit many small scattered blocks per query, and a
/// second heap hop per visit costs more than the lane split saves.
///
/// Blocks are chained with `prev`/`next` pointers in curve-value order so
/// that window queries can scan a contiguous range of blocks (§3.2).  Blocks
/// created by insertions after bulk-loading are flagged with
/// [`Block::is_overflow`] so that they "do not count towards the error
/// bounds" (§5): query algorithms treat them as extensions of their
/// predecessor block.
#[derive(Debug, Clone)]
pub struct Block {
    /// `[x0..x_cap | y0..y_cap]`; only the first `len` entries of each half
    /// are live.
    coords: Box<[f64]>,
    ids: Vec<u64>,
    capacity: usize,
    prev: Option<BlockId>,
    next: Option<BlockId>,
    overflow: bool,
}

impl Block {
    /// Creates an empty block with the given capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "block capacity must be positive");
        Self {
            coords: vec![0.0; 2 * capacity].into_boxed_slice(),
            ids: Vec::with_capacity(capacity),
            capacity,
            prev: None,
            next: None,
            overflow: false,
        }
    }

    /// Number of live points in the block.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the block holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Whether the block is at capacity.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.ids.len() >= self.capacity
    }

    /// The block's configured capacity (`B`).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether this block was created by an insertion after bulk-loading.
    #[inline]
    pub fn is_overflow(&self) -> bool {
        self.overflow
    }

    /// Marks the block as an insertion-created overflow block.
    #[inline]
    pub fn set_overflow(&mut self, overflow: bool) {
        self.overflow = overflow;
    }

    /// ID of the preceding block in curve order, if any.
    #[inline]
    pub fn prev(&self) -> Option<BlockId> {
        self.prev
    }

    /// ID of the following block in curve order, if any.
    #[inline]
    pub fn next(&self) -> Option<BlockId> {
        self.next
    }

    /// Sets the predecessor link.
    #[inline]
    pub fn set_prev(&mut self, prev: Option<BlockId>) {
        self.prev = prev;
    }

    /// Sets the successor link.
    #[inline]
    pub fn set_next(&mut self, next: Option<BlockId>) {
        self.next = next;
    }

    /// Appends a point.
    ///
    /// # Panics
    /// Panics if the block is full; callers are expected to check
    /// [`Block::is_full`] and allocate an overflow block instead.
    pub fn push(&mut self, p: Point) {
        assert!(!self.is_full(), "push into a full block");
        let n = self.ids.len();
        self.coords[n] = p.x;
        self.coords[self.capacity + n] = p.y;
        self.ids.push(p.id);
    }

    /// The x-coordinate lane.
    #[inline]
    pub fn xs(&self) -> &[f64] {
        &self.coords[..self.ids.len()]
    }

    /// The y-coordinate lane.
    #[inline]
    pub fn ys(&self) -> &[f64] {
        &self.coords[self.capacity..self.capacity + self.ids.len()]
    }

    /// The id lane.
    #[inline]
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// The `i`-th point, re-assembled from the lanes.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn point(&self, i: usize) -> Point {
        assert!(i < self.ids.len());
        Point::with_id(self.coords[i], self.coords[self.capacity + i], self.ids[i])
    }

    /// Iterates the block's points in lane order.
    pub fn iter_points(&self) -> impl Iterator<Item = Point> + '_ {
        (0..self.len()).map(move |i| self.point(i))
    }

    /// The block's points as an owned vector (maintenance paths: splits,
    /// rebuilds, verification; query paths use the kernel filters instead).
    pub fn to_points(&self) -> Vec<Point> {
        self.iter_points().collect()
    }

    /// Visits every point inside `rect`, in lane order — the kernel-driven
    /// window filter ([`kernels::for_each_in_rect`]).
    #[inline]
    pub fn for_each_in_rect(&self, rect: &Rect, visit: impl FnMut(Point)) {
        kernels::for_each_in_rect(self.xs(), self.ys(), &self.ids, rect, visit);
    }

    /// Visits every point within squared distance `r_sq` of `center`
    /// (with its squared distance), in lane order — the kernel-driven
    /// distance-range filter ([`kernels::for_each_within`]).
    #[inline]
    pub fn for_each_within(&self, center: &Point, r_sq: f64, visit: impl FnMut(Point, f64)) {
        kernels::for_each_within(
            self.xs(),
            self.ys(),
            &self.ids,
            center.x,
            center.y,
            r_sq,
            visit,
        );
    }

    /// Visits every point with its squared distance from `center`, in lane
    /// order — the kNN push loop ([`kernels::for_each_dist_sq`]).
    #[inline]
    pub fn for_each_dist_sq(&self, center: &Point, visit: impl FnMut(Point, f64)) {
        kernels::for_each_dist_sq(self.xs(), self.ys(), &self.ids, center.x, center.y, visit);
    }

    /// Removes the point with the given id, swapping in the last entry
    /// (the paper's deletion strategy: "swap p with the last point in this
    /// block and mark p as deleted").  Returns the removed point.
    pub fn remove_by_id(&mut self, id: u64) -> Option<Point> {
        let pos = self.ids.iter().position(|&i| i == id)?;
        let p = self.point(pos);
        let last = self.ids.len() - 1;
        self.coords[pos] = self.coords[last];
        self.coords[self.capacity + pos] = self.coords[self.capacity + last];
        self.ids.swap_remove(pos);
        Some(p)
    }

    /// Finds a point with exactly the given coordinates.
    pub fn find_at(&self, x: f64, y: f64) -> Option<Point> {
        let (xs, ys) = (self.xs(), self.ys());
        (0..xs.len())
            .find(|&i| xs[i] == x && ys[i] == y)
            .map(|i| self.point(i))
    }

    /// The minimum bounding rectangle of the block's points (empty rectangle
    /// for an empty block) — a packed min/max fold over the lanes.
    pub fn mbr(&self) -> Rect {
        kernels::mbr_of(self.xs(), self.ys())
    }

    /// Approximate in-memory size of the block in bytes, for index-size
    /// accounting.  The fixed capacity is charged even when the block is not
    /// full, mirroring an on-disk page (the lane split leaves the per-point
    /// footprint unchanged: two `f64`s plus one `u64`).
    pub fn size_bytes(&self) -> usize {
        self.capacity * (2 * std::mem::size_of::<f64>() + std::mem::size_of::<u64>())
            + 4 * std::mem::size_of::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_until_full_then_panic() {
        let mut b = Block::new(3);
        b.push(Point::new(0.1, 0.1));
        b.push(Point::new(0.2, 0.2));
        b.push(Point::new(0.3, 0.3));
        assert!(b.is_full());
        let result = std::panic::catch_unwind(move || {
            let mut b = b;
            b.push(Point::new(0.4, 0.4));
        });
        assert!(result.is_err());
    }

    #[test]
    fn lanes_stay_parallel_and_points_reassemble() {
        let mut b = Block::new(4);
        b.push(Point::with_id(0.1, 0.9, 7));
        b.push(Point::with_id(0.2, 0.8, 8));
        assert_eq!(b.xs(), &[0.1, 0.2]);
        assert_eq!(b.ys(), &[0.9, 0.8]);
        assert_eq!(b.ids(), &[7, 8]);
        assert_eq!(b.point(1), Point::with_id(0.2, 0.8, 8));
        assert_eq!(
            b.to_points(),
            vec![Point::with_id(0.1, 0.9, 7), Point::with_id(0.2, 0.8, 8)]
        );
    }

    #[test]
    fn remove_by_id_frees_space_and_swaps_all_lanes() {
        let mut b = Block::new(2);
        b.push(Point::with_id(0.1, 0.1, 7));
        b.push(Point::with_id(0.2, 0.2, 8));
        assert!(b.is_full());
        let removed = b.remove_by_id(7).unwrap();
        assert_eq!(removed.id, 7);
        assert!(!b.is_full());
        assert_eq!(b.len(), 1);
        // The swapped-in survivor keeps its own coordinates on every lane.
        assert_eq!(b.point(0), Point::with_id(0.2, 0.2, 8));
        assert!(b.remove_by_id(99).is_none());
    }

    #[test]
    fn find_at_matches_exact_coordinates() {
        let mut b = Block::new(4);
        b.push(Point::with_id(0.25, 0.75, 3));
        assert_eq!(b.find_at(0.25, 0.75).unwrap().id, 3);
        assert!(b.find_at(0.25, 0.7500001).is_none());
    }

    #[test]
    fn mbr_covers_all_points_and_empty_block_has_empty_mbr() {
        let mut b = Block::new(4);
        assert!(b.mbr().is_empty());
        b.push(Point::new(0.2, 0.8));
        b.push(Point::new(0.6, 0.1));
        let m = b.mbr();
        assert_eq!(m, Rect::new(0.2, 0.1, 0.6, 0.8));
    }

    #[test]
    fn kernel_filters_agree_with_scalar_scans() {
        let mut b = Block::new(10);
        for i in 0..10 {
            b.push(Point::with_id(i as f64 / 10.0, 1.0 - i as f64 / 10.0, i));
        }
        let w = Rect::new(0.2, 0.2, 0.8, 0.8);
        let mut got = Vec::new();
        b.for_each_in_rect(&w, |p| got.push(p.id));
        let expect: Vec<u64> = b
            .iter_points()
            .filter(|p| w.contains(p))
            .map(|p| p.id)
            .collect();
        assert_eq!(got, expect);

        let q = Point::new(0.5, 0.5);
        let mut within = Vec::new();
        b.for_each_within(&q, 0.05, |p, d| {
            assert_eq!(d.to_bits(), p.dist_sq(&q).to_bits());
            within.push(p.id);
        });
        let expect: Vec<u64> = b
            .iter_points()
            .filter(|p| p.dist_sq(&q) <= 0.05)
            .map(|p| p.id)
            .collect();
        assert_eq!(within, expect);

        let mut n = 0;
        b.for_each_dist_sq(&q, |p, d| {
            assert_eq!(d.to_bits(), p.dist_sq(&q).to_bits());
            n += 1;
        });
        assert_eq!(n, b.len());
    }

    #[test]
    fn links_and_overflow_flag_roundtrip() {
        let mut b = Block::new(2);
        assert_eq!(b.prev(), None);
        assert_eq!(b.next(), None);
        b.set_prev(Some(5));
        b.set_next(Some(7));
        b.set_overflow(true);
        assert_eq!(b.prev(), Some(5));
        assert_eq!(b.next(), Some(7));
        assert!(b.is_overflow());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_is_rejected() {
        let _ = Block::new(0);
    }
}
