//! Chunked, autovectorizable scan kernels over struct-of-arrays point lanes.
//!
//! Every block-backed index family filters candidates the same way: test each
//! point of a block against a rectangle or a distance bound.  With the
//! [`crate::Block`] lanes split into separate `x`/`y`/`id` arrays, those
//! tests become straight-line loops over contiguous `f64` lanes that LLVM
//! autovectorizes (packed `cmppd`/`mulpd`/`minpd` on x86-64, `fcmge`/`fmul`
//! on aarch64 — CI greps the emitted asm for them, see
//! `ci/check_autovec.sh`).  The kernels here are that shared hot path:
//!
//! * [`rect_mask`] — batch rect-contains over a ≤64-point chunk, bitmask out,
//! * [`dist_sq_into`] — batch squared distances into a caller buffer,
//! * [`within_mask`] — batch distance-range test, bitmask out,
//! * [`min_dist_sq`] — branchless `MINDIST` (point to rectangle),
//! * [`mbr_of`] — min/max fold of a lane pair,
//! * [`for_each_in_rect`] / [`for_each_within`] / [`for_each_dist_sq`] —
//!   candidate filters driving the masks chunk by chunk, visiting survivors
//!   in ascending lane order.
//!
//! Bit-compatibility contract: each kernel computes *exactly* the expression
//! the scalar per-point code used before the rewrite (`x >= min_x && …` for
//! containment, `dx*dx + dy*dy` for distances), so answers — and therefore
//! snapshot-replay fixtures — are bit-identical.  Rust never contracts
//! `a*a + b*b` into an FMA on its own, so vectorized and scalar results
//! agree to the last ulp.

use geom::{Point, Rect};

/// Points per kernel chunk: one bitmask word's worth.
pub const CHUNK: usize = 64;

/// Batch rect-contains over one chunk of at most [`CHUNK`] points: bit `i`
/// of the result is set iff `(xs[i], ys[i])` lies inside `rect` (inclusive
/// edges, exactly [`Rect::contains`]).
///
/// # Panics
/// Panics (debug) if the lanes disagree in length or exceed [`CHUNK`].
#[inline]
pub fn rect_mask(xs: &[f64], ys: &[f64], rect: &Rect) -> u64 {
    debug_assert_eq!(xs.len(), ys.len());
    debug_assert!(xs.len() <= CHUNK);
    let mut flags = [false; CHUNK];
    // Four packed compares and three ANDs per lane group; the flag store
    // keeps the loop free of early exits, and the zip of equal-length lanes
    // keeps it free of bounds checks, so it vectorizes.
    for (f, (&x, &y)) in flags.iter_mut().zip(xs.iter().zip(ys)) {
        *f = (x >= rect.min_x) & (x <= rect.max_x) & (y >= rect.min_y) & (y <= rect.max_y);
    }
    pack_mask(&flags, xs.len())
}

/// Batch squared distances from `(cx, cy)` over lane chunks of any length:
/// `out[i] = (xs[i]-cx)^2 + (ys[i]-cy)^2`, the exact [`Point::dist_sq`]
/// expression.
///
/// # Panics
/// Panics (debug) if `out` is shorter than the lanes.
#[inline]
pub fn dist_sq_into(xs: &[f64], ys: &[f64], cx: f64, cy: f64, out: &mut [f64]) {
    debug_assert_eq!(xs.len(), ys.len());
    debug_assert!(out.len() >= xs.len());
    for ((o, &x), &y) in out.iter_mut().zip(xs).zip(ys) {
        let dx = x - cx;
        let dy = y - cy;
        *o = dx * dx + dy * dy;
    }
}

/// Batch distance-range test over one chunk of at most [`CHUNK`] points:
/// bit `i` is set iff the squared distance from `(cx, cy)` to point `i` is
/// `<= r_sq`.
#[inline]
pub fn within_mask(xs: &[f64], ys: &[f64], cx: f64, cy: f64, r_sq: f64) -> u64 {
    debug_assert_eq!(xs.len(), ys.len());
    debug_assert!(xs.len() <= CHUNK);
    let mut flags = [false; CHUNK];
    for (f, (&x, &y)) in flags.iter_mut().zip(xs.iter().zip(ys)) {
        let dx = x - cx;
        let dy = y - cy;
        *f = dx * dx + dy * dy <= r_sq;
    }
    pack_mask(&flags, xs.len())
}

/// Folds a `bool` flag buffer into a bitmask (bit `i` = `flags[i]`).
///
/// Eight flag bytes at a time: a group of `0x00`/`0x01` bytes read as a
/// little-endian word and multiplied by `0x0102_0408_1020_4080` lands flag
/// `i` on bit `56 + i` (the cross terms hit 64 distinct lower bit
/// positions, so no carries corrupt the top byte) — 8 multiply-shift steps
/// instead of 64 shift-or steps.
#[inline]
fn pack_mask(flags: &[bool; CHUNK], n: usize) -> u64 {
    let mut mask = 0u64;
    for (g, group) in flags.chunks_exact(8).enumerate() {
        let word = u64::from_le_bytes(std::array::from_fn(|i| group[i] as u8));
        mask |= (word.wrapping_mul(0x0102_0408_1020_4080) >> 56) << (8 * g);
    }
    // Lanes past `n` hold the buffer's `false` initializer; the mask-off
    // keeps the result well-defined even if a caller ever reuses a buffer.
    if n < CHUNK {
        mask &= (1u64 << n) - 1;
    }
    mask
}

/// Branchless squared `MINDIST` from `(x, y)` to `rect`: the per-axis
/// excursion is `max(min - v, v - max, 0)`, computed with two `max` ops
/// instead of the classic two-way branch chain.  Bit-identical to the
/// branchy form for finite inputs (for a point inside the slab both
/// differences are `<= 0`, so the fold returns exactly `0.0`).
#[inline]
pub fn min_dist_sq(rect: &Rect, x: f64, y: f64) -> f64 {
    let dx = (rect.min_x - x).max(x - rect.max_x).max(0.0);
    let dy = (rect.min_y - y).max(y - rect.max_y).max(0.0);
    dx * dx + dy * dy
}

/// The minimum bounding rectangle of a lane pair (empty rectangle for empty
/// lanes): a packed min/max fold.
#[inline]
pub fn mbr_of(xs: &[f64], ys: &[f64]) -> Rect {
    debug_assert_eq!(xs.len(), ys.len());
    let mut r = Rect::empty();
    for (&x, &y) in xs.iter().zip(ys) {
        r.min_x = r.min_x.min(x);
        r.max_x = r.max_x.max(x);
        r.min_y = r.min_y.min(y);
        r.max_y = r.max_y.max(y);
    }
    r
}

/// Candidate filter: visits every point inside `rect`, in ascending lane
/// order — the shared inner loop of window queries and window-probe joins.
/// Chunks with an all-zero mask are skipped without touching the id lane.
#[inline]
pub fn for_each_in_rect(
    xs: &[f64],
    ys: &[f64],
    ids: &[u64],
    rect: &Rect,
    mut visit: impl FnMut(Point),
) {
    debug_assert_eq!(xs.len(), ids.len());
    let mut start = 0;
    while start < xs.len() {
        let end = (start + CHUNK).min(xs.len());
        let mut mask = rect_mask(&xs[start..end], &ys[start..end], rect);
        while mask != 0 {
            let i = start + mask.trailing_zeros() as usize;
            visit(Point::with_id(xs[i], ys[i], ids[i]));
            mask &= mask - 1;
        }
        start = end;
    }
}

/// Candidate filter: visits every point within squared distance `r_sq` of
/// `(cx, cy)` together with its squared distance, in ascending lane order —
/// the shared inner loop of distance-range queries and distance joins.
///
/// Distances are computed once into a batched buffer (the vectorized part),
/// the radius compare folds the buffer into a bitmask, and survivors are
/// emitted sparsely via `trailing_zeros` — matches re-read their distance
/// from the buffer instead of recomputing it.
#[inline]
pub fn for_each_within(
    xs: &[f64],
    ys: &[f64],
    ids: &[u64],
    cx: f64,
    cy: f64,
    r_sq: f64,
    mut visit: impl FnMut(Point, f64),
) {
    debug_assert_eq!(xs.len(), ids.len());
    let mut buf = [0.0f64; CHUNK];
    let mut flags = [false; CHUNK];
    let mut start = 0;
    while start < xs.len() {
        let end = (start + CHUNK).min(xs.len());
        dist_sq_into(&xs[start..end], &ys[start..end], cx, cy, &mut buf);
        for (f, &d_sq) in flags.iter_mut().zip(&buf[..end - start]) {
            *f = d_sq <= r_sq;
        }
        let mut mask = pack_mask(&flags, end - start);
        while mask != 0 {
            let off = mask.trailing_zeros() as usize;
            let i = start + off;
            visit(Point::with_id(xs[i], ys[i], ids[i]), buf[off]);
            mask &= mask - 1;
        }
        start = end;
    }
}

/// Visits every point with its squared distance from `(cx, cy)`, in lane
/// order — the kNN heap-push loop.  Distances are computed in a batched
/// buffer so the squaring vectorizes; the visit loop then reads them back.
#[inline]
pub fn for_each_dist_sq(
    xs: &[f64],
    ys: &[f64],
    ids: &[u64],
    cx: f64,
    cy: f64,
    mut visit: impl FnMut(Point, f64),
) {
    debug_assert_eq!(xs.len(), ids.len());
    let mut buf = [0.0f64; CHUNK];
    let mut start = 0;
    while start < xs.len() {
        let end = (start + CHUNK).min(xs.len());
        dist_sq_into(&xs[start..end], &ys[start..end], cx, cy, &mut buf);
        for i in start..end {
            visit(Point::with_id(xs[i], ys[i], ids[i]), buf[i - start]);
        }
        start = end;
    }
}

/// Filters an array-of-structs probe set down to the probes within
/// `MINDIST <= r_sq` of `rect` — the shard/node fan-out step of the join
/// filter cascade, using the branchless [`min_dist_sq`].
#[inline]
pub fn probes_within(probes: &[Point], rect: &Rect, r_sq: f64, out: &mut Vec<Point>) {
    out.clear();
    out.extend(
        probes
            .iter()
            .filter(|q| min_dist_sq(rect, q.x, q.y) <= r_sq),
    );
}

/// Non-inlined instantiations of the hot kernels for the CI
/// autovectorization guard: `ci/check_autovec.sh` compiles this crate with
/// `--emit asm` and greps these symbols' bodies for packed SIMD ops
/// (`mulpd`/`minpd`/`maxpd`/`cmp*pd`/`movupd` on x86-64, their `v`-prefixed
/// AVX forms, `fmul v*`/`fcmge v*` on aarch64).  The `#[inline]` kernels
/// above are otherwise only codegen'd inside their callers, where the guard
/// could not find them; query paths never call these wrappers.
#[doc(hidden)]
pub mod asm_probes {
    use geom::Rect;

    #[inline(never)]
    pub fn rect_mask(xs: &[f64], ys: &[f64], rect: &Rect) -> u64 {
        super::rect_mask(xs, ys, rect)
    }

    #[inline(never)]
    pub fn within_mask(xs: &[f64], ys: &[f64], cx: f64, cy: f64, r_sq: f64) -> u64 {
        super::within_mask(xs, ys, cx, cy, r_sq)
    }

    #[inline(never)]
    pub fn dist_sq_into(xs: &[f64], ys: &[f64], cx: f64, cy: f64, out: &mut [f64]) {
        super::dist_sq_into(xs, ys, cx, cy, out)
    }

    #[inline(never)]
    pub fn mbr_of(xs: &[f64], ys: &[f64]) -> Rect {
        super::mbr_of(xs, ys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_rect_mask(xs: &[f64], ys: &[f64], rect: &Rect) -> u64 {
        let mut mask = 0u64;
        for i in 0..xs.len() {
            if rect.contains(&Point::new(xs[i], ys[i])) {
                mask |= 1 << i;
            }
        }
        mask
    }

    #[test]
    fn rect_mask_matches_scalar_contains() {
        let xs: Vec<f64> = (0..40).map(|i| i as f64 / 40.0).collect();
        let ys: Vec<f64> = (0..40).map(|i| 1.0 - i as f64 / 40.0).collect();
        let r = Rect::new(0.2, 0.3, 0.7, 0.9);
        assert_eq!(rect_mask(&xs, &ys, &r), scalar_rect_mask(&xs, &ys, &r));
        // Boundary-touching rectangle: inclusive on all four edges.
        let r = Rect::new(xs[3], ys[5], xs[3], ys[5]);
        assert_eq!(rect_mask(&xs, &ys, &r), scalar_rect_mask(&xs, &ys, &r));
        // Empty lanes.
        assert_eq!(rect_mask(&[], &[], &r), 0);
    }

    #[test]
    fn dist_sq_matches_point_dist_sq_bitwise() {
        let xs = [0.1, 0.5, 0.9, 1e-300, 1e300];
        let ys = [0.9, 0.5, 0.1, -1e-300, -1e300];
        let q = Point::new(0.3, 0.4);
        let mut out = [0.0; 5];
        dist_sq_into(&xs, &ys, q.x, q.y, &mut out);
        for i in 0..5 {
            let p = Point::new(xs[i], ys[i]);
            assert_eq!(out[i].to_bits(), p.dist_sq(&q).to_bits());
        }
    }

    #[test]
    fn within_mask_matches_scalar_radius_test() {
        let xs: Vec<f64> = (0..64).map(|i| (i as f64 * 0.37).fract()).collect();
        let ys: Vec<f64> = (0..64).map(|i| (i as f64 * 0.71).fract()).collect();
        let q = Point::new(0.5, 0.5);
        for r_sq in [0.0, 0.01, 0.25, 4.0] {
            let mask = within_mask(&xs, &ys, q.x, q.y, r_sq);
            for i in 0..64 {
                let inside = Point::new(xs[i], ys[i]).dist_sq(&q) <= r_sq;
                assert_eq!(mask >> i & 1 == 1, inside, "lane {i} r_sq {r_sq}");
            }
        }
    }

    #[test]
    fn min_dist_sq_matches_branchy_rect_version() {
        let r = Rect::new(0.25, 0.25, 0.75, 0.75);
        for (x, y) in [
            (0.1, 0.1),
            (0.5, 0.1),
            (0.9, 0.1),
            (0.1, 0.5),
            (0.5, 0.5),
            (0.9, 0.5),
            (0.1, 0.9),
            (0.5, 0.9),
            (0.9, 0.9),
            (0.25, 0.75),
            (0.75, 0.25),
        ] {
            let p = Point::new(x, y);
            assert_eq!(
                min_dist_sq(&r, x, y).to_bits(),
                r.min_dist_sq(&p).to_bits(),
                "({x}, {y})"
            );
        }
    }

    #[test]
    fn mbr_of_matches_expand_fold() {
        assert!(mbr_of(&[], &[]).is_empty());
        let xs = [0.4, 0.2, 0.8];
        let ys = [0.9, 0.5, 0.1];
        let mut expect = Rect::empty();
        for i in 0..3 {
            expect.expand_to_point(Point::new(xs[i], ys[i]));
        }
        assert_eq!(mbr_of(&xs, &ys), expect);
    }

    #[test]
    fn filters_visit_in_ascending_lane_order_across_chunks() {
        // More than one chunk so the chunk seams are exercised.
        let n = CHUNK * 2 + 7;
        let xs: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
        let ys: Vec<f64> = xs.clone();
        let ids: Vec<u64> = (0..n as u64).collect();
        let r = Rect::new(0.1, 0.1, 0.9, 0.9);
        let mut got = Vec::new();
        for_each_in_rect(&xs, &ys, &ids, &r, |p| got.push(p.id));
        let expect: Vec<u64> = (0..n)
            .filter(|&i| r.contains(&Point::new(xs[i], ys[i])))
            .map(|i| i as u64)
            .collect();
        assert_eq!(got, expect);
        assert!(got.windows(2).all(|w| w[0] < w[1]));

        let mut within = Vec::new();
        for_each_within(&xs, &ys, &ids, 0.5, 0.5, 0.01, |p, d| {
            assert_eq!(
                d.to_bits(),
                Point::new(p.x, p.y)
                    .dist_sq(&Point::new(0.5, 0.5))
                    .to_bits()
            );
            within.push(p.id);
        });
        assert!(within.windows(2).all(|w| w[0] < w[1]));
        assert!(!within.is_empty());

        let mut all = Vec::new();
        for_each_dist_sq(&xs, &ys, &ids, 0.5, 0.5, |p, _| all.push(p.id));
        assert_eq!(all, ids);
    }

    #[test]
    fn zero_radius_keeps_only_exact_hits() {
        let xs = [0.5, 0.25];
        let ys = [0.5, 0.75];
        let ids = [1, 2];
        let mut got = Vec::new();
        for_each_within(&xs, &ys, &ids, 0.5, 0.5, 0.0, |p, d| got.push((p.id, d)));
        assert_eq!(got, vec![(1, 0.0)]);
    }

    #[test]
    fn probes_within_filters_by_branchless_mindist() {
        let rect = Rect::new(0.4, 0.4, 0.6, 0.6);
        let probes = vec![
            Point::with_id(0.5, 0.5, 1), // inside: MINDIST 0
            Point::with_id(0.3, 0.5, 2), // 0.1 away
            Point::with_id(0.0, 0.0, 3), // far
        ];
        let mut out = Vec::new();
        probes_within(&probes, &rect, 0.02, &mut out);
        assert_eq!(out.iter().map(|p| p.id).collect::<Vec<_>>(), vec![1, 2]);
        probes_within(&probes, &rect, 0.0, &mut out);
        assert_eq!(out.iter().map(|p| p.id).collect::<Vec<_>>(), vec![1]);
    }
}
