//! Property-style tests for the space-filling curves and rank-space
//! transform, driven by a seeded pseudo-random sampler (the environment has
//! no `proptest`; see `vendor/README.md`).

use geom::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sfc::{hilbert, rank_space::rank_space_order, zcurve, CurveKind, RankSpace};

const CASES: usize = 256;

fn rand_points(rng: &mut StdRng, lo: usize, hi: usize) -> Vec<Point> {
    let n = rng.gen_range(lo..hi);
    (0..n)
        .map(|i| Point::with_id(rng.gen::<f64>(), rng.gen::<f64>(), i as u64))
        .collect()
}

#[test]
fn zcurve_roundtrips() {
    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..CASES {
        let x = rng.gen::<u64>() as u32;
        let y = rng.gen::<u64>() as u32;
        assert_eq!(zcurve::decode(zcurve::encode(x, y)), (x, y));
    }
}

#[test]
fn hilbert_roundtrips() {
    let mut rng = StdRng::seed_from_u64(12);
    for _ in 0..CASES {
        let order = rng.gen_range(1usize..=20) as u32;
        let mask = (1u64 << order) - 1;
        let x = (rng.gen::<u64>() & mask) as u32;
        let y = (rng.gen::<u64>() & mask) as u32;
        let v = hilbert::encode(x, y, order);
        assert!(v < 1u64 << (2 * order));
        assert_eq!(hilbert::decode(v, order), (x, y));
    }
}

#[test]
fn hilbert_consecutive_values_are_adjacent_cells() {
    // The defining locality property: consecutive curve positions differ
    // by exactly one step in exactly one dimension.
    let mut rng = StdRng::seed_from_u64(13);
    for _ in 0..CASES {
        let order = rng.gen_range(1usize..=6) as u32;
        let max = 1u64 << (2 * order);
        let d = rng.gen::<u64>() % (max - 1);
        let (x0, y0) = hilbert::decode(d, order);
        let (x1, y1) = hilbert::decode(d + 1, order);
        let dist = (x0 as i64 - x1 as i64).abs() + (y0 as i64 - y1 as i64).abs();
        assert_eq!(dist, 1);
    }
}

#[test]
fn zcurve_is_monotone_in_each_coordinate() {
    // Increasing either coordinate strictly increases the Z-value when
    // the other is fixed.
    let mut rng = StdRng::seed_from_u64(14);
    for _ in 0..CASES {
        let x = rng.gen_range(0usize..1000) as u32;
        let y = rng.gen_range(0usize..1000) as u32;
        let dx = rng.gen_range(1usize..100) as u32;
        let dy = rng.gen_range(1usize..100) as u32;
        assert!(zcurve::encode(x + dx, y) > zcurve::encode(x, y));
        assert!(zcurve::encode(x, y + dy) > zcurve::encode(x, y));
    }
}

#[test]
fn rank_space_is_a_double_permutation() {
    let mut rng = StdRng::seed_from_u64(15);
    for _ in 0..64 {
        let pts = rand_points(&mut rng, 2, 200);
        let rs = RankSpace::new(&pts);
        let n = pts.len();
        let mut seen_x = vec![false; n];
        let mut seen_y = vec![false; n];
        for i in 0..n {
            let (rx, ry) = rs.rank(i);
            assert!((rx as usize) < n && (ry as usize) < n);
            assert!(!seen_x[rx as usize]);
            assert!(!seen_y[ry as usize]);
            seen_x[rx as usize] = true;
            seen_y[ry as usize] = true;
        }
    }
}

#[test]
fn rank_space_curve_values_fit_in_order() {
    let mut rng = StdRng::seed_from_u64(16);
    for _ in 0..64 {
        let pts = rand_points(&mut rng, 2, 200);
        let rs = RankSpace::new(&pts);
        let bound = 1u64 << (2 * rs.order());
        for curve in [CurveKind::Z, CurveKind::Hilbert] {
            for v in rs.curve_values(curve) {
                assert!(v < bound);
            }
        }
        assert!(1usize << rs.order() >= pts.len());
        assert_eq!(rs.order(), rank_space_order(pts.len()));
    }
}

#[test]
fn sorted_permutation_is_stable_under_curve() {
    let mut rng = StdRng::seed_from_u64(17);
    for _ in 0..64 {
        let pts = rand_points(&mut rng, 2, 100);
        let rs = RankSpace::new(&pts);
        for curve in [CurveKind::Z, CurveKind::Hilbert] {
            let perm = rs.sorted_permutation(curve);
            let vals: Vec<u64> = perm.iter().map(|&i| rs.curve_value(i, curve)).collect();
            assert!(vals.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
