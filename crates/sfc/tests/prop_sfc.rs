//! Property-based tests for the space-filling curves and rank-space transform.

use geom::Point;
use proptest::prelude::*;
use sfc::{hilbert, rank_space::rank_space_order, zcurve, CurveKind, RankSpace};

proptest! {
    #[test]
    fn zcurve_roundtrips(x in any::<u32>(), y in any::<u32>()) {
        prop_assert_eq!(zcurve::decode(zcurve::encode(x, y)), (x, y));
    }

    #[test]
    fn hilbert_roundtrips(order in 1u32..=20, raw_x in any::<u32>(), raw_y in any::<u32>()) {
        let mask = (1u64 << order) - 1;
        let x = (raw_x as u64 & mask) as u32;
        let y = (raw_y as u64 & mask) as u32;
        let v = hilbert::encode(x, y, order);
        prop_assert!(v < 1u64 << (2 * order));
        prop_assert_eq!(hilbert::decode(v, order), (x, y));
    }

    #[test]
    fn hilbert_consecutive_values_are_adjacent_cells(order in 1u32..=6, raw in any::<u64>()) {
        // The defining locality property: consecutive curve positions differ
        // by exactly one step in exactly one dimension.
        let max = 1u64 << (2 * order);
        let d = raw % (max - 1);
        let (x0, y0) = hilbert::decode(d, order);
        let (x1, y1) = hilbert::decode(d + 1, order);
        let dist = (x0 as i64 - x1 as i64).abs() + (y0 as i64 - y1 as i64).abs();
        prop_assert_eq!(dist, 1);
    }

    #[test]
    fn zcurve_is_monotone_in_each_coordinate(x in 0u32..1000, y in 0u32..1000, dx in 1u32..100, dy in 1u32..100) {
        // Increasing either coordinate strictly increases the Z-value when
        // the other is fixed.
        prop_assert!(zcurve::encode(x + dx, y) > zcurve::encode(x, y));
        prop_assert!(zcurve::encode(x, y + dy) > zcurve::encode(x, y));
    }

    #[test]
    fn rank_space_is_a_double_permutation(
        coords in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 2..200)
    ) {
        let pts: Vec<Point> = coords
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| Point::with_id(x, y, i as u64))
            .collect();
        let rs = RankSpace::new(&pts);
        let n = pts.len();
        let mut seen_x = vec![false; n];
        let mut seen_y = vec![false; n];
        for i in 0..n {
            let (rx, ry) = rs.rank(i);
            prop_assert!((rx as usize) < n && (ry as usize) < n);
            prop_assert!(!seen_x[rx as usize]);
            prop_assert!(!seen_y[ry as usize]);
            seen_x[rx as usize] = true;
            seen_y[ry as usize] = true;
        }
    }

    #[test]
    fn rank_space_curve_values_fit_in_order(
        coords in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 2..200)
    ) {
        let pts: Vec<Point> = coords
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| Point::with_id(x, y, i as u64))
            .collect();
        let rs = RankSpace::new(&pts);
        let bound = 1u64 << (2 * rs.order());
        for curve in [CurveKind::Z, CurveKind::Hilbert] {
            for v in rs.curve_values(curve) {
                prop_assert!(v < bound);
            }
        }
        prop_assert!(1usize << rs.order() >= pts.len());
        prop_assert_eq!(rs.order(), rank_space_order(pts.len()));
    }

    #[test]
    fn sorted_permutation_is_stable_under_curve(
        coords in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 2..100)
    ) {
        let pts: Vec<Point> = coords
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| Point::with_id(x, y, i as u64))
            .collect();
        let rs = RankSpace::new(&pts);
        for curve in [CurveKind::Z, CurveKind::Hilbert] {
            let perm = rs.sorted_permutation(curve);
            let vals: Vec<u64> = perm.iter().map(|&i| rs.curve_value(i, curve)).collect();
            prop_assert!(vals.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
