//! Space-filling curves and the rank-space transform.
//!
//! The RSMI paper (§3.1) orders points by mapping them into a *rank space*
//! (an `n x n` grid in which every row and every column contains exactly one
//! point) and then enumerating the rank-space grid with a space-filling curve
//! (SFC).  The curve value of a point is the key from which its block ID is
//! derived; the evenness of the gaps between consecutive curve values is what
//! makes the learned mapping easy to fit.
//!
//! This crate provides:
//!
//! * [`zcurve`] — the Z-order (Morton) curve used by the ZM baseline and
//!   available to RSMI,
//! * [`hilbert`] — the Hilbert curve, RSMI's default ordering,
//! * [`CurveKind`] — a small enum selecting between them at run time,
//! * [`rank_space`] — the rank-space transform of Qi et al. (the R-tree
//!   packing technique the paper builds on).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hilbert;
pub mod rank_space;
pub mod zcurve;

pub use rank_space::{rank_space_order, RankSpace};

/// Which space-filling curve to use for ordering points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CurveKind {
    /// Z-order (Morton) curve: interleaves the bits of the two coordinates.
    Z,
    /// Hilbert curve: better locality, RSMI's default (§6.1).
    #[default]
    Hilbert,
}

impl CurveKind {
    /// Encodes grid cell `(x, y)` of a `2^order x 2^order` grid into a curve
    /// value in `[0, 4^order)`.
    #[inline]
    pub fn encode(&self, x: u32, y: u32, order: u32) -> u64 {
        match self {
            CurveKind::Z => zcurve::encode(x, y),
            CurveKind::Hilbert => hilbert::encode(x, y, order),
        }
    }

    /// Decodes a curve value back into grid coordinates.
    #[inline]
    pub fn decode(&self, value: u64, order: u32) -> (u32, u32) {
        match self {
            CurveKind::Z => zcurve::decode(value),
            CurveKind::Hilbert => hilbert::decode(value, order),
        }
    }

    /// Human-readable name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            CurveKind::Z => "z",
            CurveKind::Hilbert => "hilbert",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_curves_roundtrip_small_grid() {
        for curve in [CurveKind::Z, CurveKind::Hilbert] {
            let order = 4;
            for x in 0..16u32 {
                for y in 0..16u32 {
                    let v = curve.encode(x, y, order);
                    assert!(v < 1 << (2 * order));
                    assert_eq!(curve.decode(v, order), (x, y), "curve {curve:?}");
                }
            }
        }
    }

    #[test]
    fn both_curves_are_bijective_on_small_grid() {
        for curve in [CurveKind::Z, CurveKind::Hilbert] {
            let order = 3;
            let mut seen = [false; 64];
            for x in 0..8u32 {
                for y in 0..8u32 {
                    let v = curve.encode(x, y, order) as usize;
                    assert!(!seen[v], "duplicate curve value for {curve:?}");
                    seen[v] = true;
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn default_curve_is_hilbert() {
        assert_eq!(CurveKind::default(), CurveKind::Hilbert);
        assert_eq!(CurveKind::Hilbert.name(), "hilbert");
        assert_eq!(CurveKind::Z.name(), "z");
    }
}
