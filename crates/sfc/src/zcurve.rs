//! Z-order (Morton) curve.
//!
//! The Z-curve value of a grid cell is obtained by interleaving the bits of
//! its x- and y-coordinates.  The curve visits the grid in a recursive "Z"
//! pattern from the bottom-left to the top-right of the space, which is why
//! the minimum and maximum curve values inside a query window are attained at
//! the window's bottom-left and top-right corners (§4.2 of the paper).

/// Spreads the lower 32 bits of `v` so that each bit is followed by a zero
/// bit: `abcd` becomes `0a0b0c0d`.
#[inline]
fn interleave_zeros(v: u32) -> u64 {
    let mut x = v as u64;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Inverse of [`interleave_zeros`]: keeps every other bit and compacts them.
#[inline]
fn compact_bits(v: u64) -> u32 {
    let mut x = v & 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x >> 16)) & 0x0000_0000_FFFF_FFFF;
    x as u32
}

/// Encodes grid cell `(x, y)` into its Z-curve (Morton) value.
///
/// The full 32 bits of each coordinate are supported; the grid order is
/// implicit in the magnitude of the coordinates.
#[inline]
pub fn encode(x: u32, y: u32) -> u64 {
    interleave_zeros(x) | (interleave_zeros(y) << 1)
}

/// Decodes a Z-curve value back into its `(x, y)` grid cell.
#[inline]
pub fn decode(value: u64) -> (u32, u32) {
    (compact_bits(value), compact_bits(value >> 1))
}

/// Maps a point in the unit square onto the Z-curve of a `2^order` grid.
///
/// Used by the ZM baseline, which (unlike RSMI) applies the curve directly in
/// the original space rather than in rank space.
#[inline]
pub fn encode_unit(x: f64, y: f64, order: u32) -> u64 {
    let scale = (1u64 << order) as f64;
    let max = (1u64 << order) - 1;
    let gx = ((x.clamp(0.0, 1.0) * scale) as u64).min(max) as u32;
    let gy = ((y.clamp(0.0, 1.0) * scale) as u64).min(max) as u32;
    encode(gx, gy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_matches_known_values() {
        // Classic Morton order for a 4x4 grid.
        assert_eq!(encode(0, 0), 0);
        assert_eq!(encode(1, 0), 1);
        assert_eq!(encode(0, 1), 2);
        assert_eq!(encode(1, 1), 3);
        assert_eq!(encode(2, 0), 4);
        assert_eq!(encode(3, 3), 15);
        assert_eq!(encode(0, 2), 8);
    }

    #[test]
    fn roundtrip_large_coordinates() {
        for &(x, y) in &[
            (0u32, 0u32),
            (u32::MAX, 0),
            (0, u32::MAX),
            (u32::MAX, u32::MAX),
            (123_456_789, 987_654_321),
            (1 << 31, 1 << 30),
        ] {
            assert_eq!(decode(encode(x, y)), (x, y));
        }
    }

    #[test]
    fn z_value_is_monotone_in_quadrants() {
        // All cells of the lower-left quadrant of a 2^k grid come before all
        // cells of the upper-right quadrant.
        let order = 4u32;
        let half = 1u32 << (order - 1);
        let max_ll = (0..half)
            .flat_map(|x| (0..half).map(move |y| encode(x, y)))
            .max()
            .unwrap();
        let min_ur = (half..2 * half)
            .flat_map(|x| (half..2 * half).map(move |y| encode(x, y)))
            .min()
            .unwrap();
        assert!(max_ll < min_ur);
    }

    #[test]
    fn encode_unit_respects_order_bound() {
        let order = 10;
        for &(x, y) in &[(0.0, 0.0), (0.5, 0.25), (1.0, 1.0), (0.9999, 0.0001)] {
            let v = encode_unit(x, y, order);
            assert!(v < 1 << (2 * order));
        }
    }

    #[test]
    fn encode_unit_bottom_left_is_minimum_top_right_is_maximum() {
        let order = 8;
        assert_eq!(encode_unit(0.0, 0.0, order), 0);
        assert_eq!(encode_unit(1.0, 1.0, order), (1 << (2 * order)) - 1);
    }
}
