//! Hilbert curve encoding.
//!
//! RSMI orders points with a Hilbert curve by default because its better
//! locality yields better query performance than the Z-curve (§6.1).  The
//! implementation below is the classic iterative rotate-and-flip algorithm
//! ("xy2d"/"d2xy"), generalised to an arbitrary curve order up to 31.

/// Rotates/flips a quadrant so that the recursion of the Hilbert construction
/// lines up.  `n` is the current (power-of-two) grid side length.
#[inline]
fn rot(n: u64, x: &mut u64, y: &mut u64, rx: u64, ry: u64) {
    if ry == 0 {
        if rx == 1 {
            *x = n.wrapping_sub(1).wrapping_sub(*x);
            *y = n.wrapping_sub(1).wrapping_sub(*y);
        }
        std::mem::swap(x, y);
    }
}

/// Encodes grid cell `(x, y)` of a `2^order x 2^order` grid into its Hilbert
/// curve value (the distance along the curve), in `[0, 4^order)`.
///
/// # Panics
/// Panics if `order > 31` or if a coordinate does not fit in the grid.
pub fn encode(x: u32, y: u32, order: u32) -> u64 {
    assert!(order <= 31, "hilbert order {order} too large (max 31)");
    let n: u64 = 1 << order;
    let (mut x, mut y) = (x as u64, y as u64);
    assert!(
        x < n && y < n,
        "coordinate ({x}, {y}) outside 2^{order} grid"
    );
    let mut d: u64 = 0;
    let mut s: u64 = n >> 1;
    while s > 0 {
        let rx = u64::from((x & s) > 0);
        let ry = u64::from((y & s) > 0);
        d += s * s * ((3 * rx) ^ ry);
        rot(n, &mut x, &mut y, rx, ry);
        s >>= 1;
    }
    d
}

/// Decodes a Hilbert curve value back into its `(x, y)` grid cell.
///
/// # Panics
/// Panics if `order > 31` or the value is out of range for the grid.
pub fn decode(d: u64, order: u32) -> (u32, u32) {
    assert!(order <= 31, "hilbert order {order} too large (max 31)");
    let n: u64 = 1 << order;
    assert!(d < n * n, "hilbert value {d} outside 4^{order} range");
    let (mut x, mut y): (u64, u64) = (0, 0);
    let mut t = d;
    let mut s: u64 = 1;
    while s < n {
        let rx = 1 & (t / 2);
        let ry = 1 & (t ^ rx);
        rot(s, &mut x, &mut y, rx, ry);
        x += s * rx;
        y += s * ry;
        t /= 4;
        s <<= 1;
    }
    (x as u32, y as u32)
}

/// Maps a point in the unit square onto the Hilbert curve of a `2^order`
/// grid, analogously to [`crate::zcurve::encode_unit`].
#[inline]
pub fn encode_unit(x: f64, y: f64, order: u32) -> u64 {
    let scale = (1u64 << order) as f64;
    let max = (1u64 << order) - 1;
    let gx = ((x.clamp(0.0, 1.0) * scale) as u64).min(max) as u32;
    let gy = ((y.clamp(0.0, 1.0) * scale) as u64).min(max) as u32;
    encode(gx, gy, order)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_one_matches_manual_curve() {
        // The order-1 Hilbert curve visits (0,0), (0,1), (1,1), (1,0).
        assert_eq!(encode(0, 0, 1), 0);
        assert_eq!(encode(0, 1, 1), 1);
        assert_eq!(encode(1, 1, 1), 2);
        assert_eq!(encode(1, 0, 1), 3);
    }

    #[test]
    fn order_two_is_a_permutation_with_adjacent_steps() {
        let order = 2;
        let n = 4u32;
        let mut cells = [(0u32, 0u32); 16];
        for x in 0..n {
            for y in 0..n {
                cells[encode(x, y, order) as usize] = (x, y);
            }
        }
        // Consecutive curve values must be adjacent grid cells (Manhattan
        // distance exactly 1) — the defining property of the Hilbert curve.
        for w in cells.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            let d = (x0 as i64 - x1 as i64).abs() + (y0 as i64 - y1 as i64).abs();
            assert_eq!(d, 1, "cells {:?} -> {:?} are not adjacent", w[0], w[1]);
        }
    }

    #[test]
    fn roundtrip_various_orders() {
        for order in [1u32, 2, 3, 5, 8, 16, 20] {
            let n = 1u64 << order;
            for &(x, y) in &[
                (0u64, 0u64),
                (n - 1, 0),
                (0, n - 1),
                (n - 1, n - 1),
                (n / 2, n / 3),
            ] {
                let v = encode(x as u32, y as u32, order);
                assert_eq!(decode(v, order), (x as u32, y as u32));
            }
        }
    }

    #[test]
    fn curve_values_cover_full_range() {
        let order = 3;
        let mut seen = [false; 64];
        for x in 0..8 {
            for y in 0..8 {
                seen[encode(x, y, order) as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn encode_panics_on_out_of_grid_coordinate() {
        encode(4, 0, 2);
    }

    #[test]
    fn encode_unit_handles_boundaries() {
        let order = 10;
        let v0 = encode_unit(0.0, 0.0, order);
        let v1 = encode_unit(1.0, 1.0, order);
        assert!(v0 < 1 << (2 * order));
        assert!(v1 < 1 << (2 * order));
    }

    #[test]
    fn adjacency_holds_for_order_three() {
        let order = 3;
        let n = 8u32;
        let mut cells = vec![(0u32, 0u32); (n * n) as usize];
        for x in 0..n {
            for y in 0..n {
                cells[encode(x, y, order) as usize] = (x, y);
            }
        }
        for w in cells.windows(2) {
            let d = (w[0].0 as i64 - w[1].0 as i64).abs() + (w[0].1 as i64 - w[1].1 as i64).abs();
            assert_eq!(d, 1);
        }
    }
}
