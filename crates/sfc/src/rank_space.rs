//! The rank-space transform (§3.1 of the RSMI paper).
//!
//! Points are mapped to an `n x n` grid where the coordinate of a point in
//! each dimension is its *rank* in that dimension (ties broken by the other
//! coordinate).  The key property of the rank space is that every row and
//! every column of the grid contains exactly one point, which evens out the
//! gaps between the curve values of adjacently ranked points and therefore
//! simplifies the CDF the index model has to learn.

use crate::CurveKind;
use geom::Point;

/// The curve order needed so that a `2^order` grid has at least `n` rows and
/// columns, i.e. `order = ceil(log2(n))` (minimum 1).
#[inline]
pub fn rank_space_order(n: usize) -> u32 {
    if n <= 2 {
        1
    } else {
        (usize::BITS - (n - 1).leading_zeros()).max(1)
    }
}

/// The rank-space representation of a point set.
///
/// Rank pairs are stored in the same order as the input slice, so
/// `ranks()[i]` corresponds to `points[i]`.
#[derive(Debug, Clone)]
pub struct RankSpace {
    order: u32,
    ranks: Vec<(u32, u32)>,
}

impl RankSpace {
    /// Computes ranks for every point.
    ///
    /// Sorting is `O(n log n)`; this is the dominant cost of bulk-loading a
    /// leaf model.  Ties on x are broken by y and vice versa, exactly as in
    /// the paper's Fig. 3 example, with the point id as the final tiebreak so
    /// the transform is deterministic even for duplicate locations.
    pub fn new(points: &[Point]) -> Self {
        let n = points.len();
        let mut by_x: Vec<usize> = (0..n).collect();
        by_x.sort_by(|&a, &b| cmp_x(&points[a], &points[b]));
        let mut by_y: Vec<usize> = (0..n).collect();
        by_y.sort_by(|&a, &b| cmp_y(&points[a], &points[b]));

        let mut ranks = vec![(0u32, 0u32); n];
        for (rank, &idx) in by_x.iter().enumerate() {
            ranks[idx].0 = rank as u32;
        }
        for (rank, &idx) in by_y.iter().enumerate() {
            ranks[idx].1 = rank as u32;
        }
        Self {
            order: rank_space_order(n.max(1)),
            ranks,
        }
    }

    /// The curve order of the rank-space grid.
    #[inline]
    pub fn order(&self) -> u32 {
        self.order
    }

    /// The `(rank_x, rank_y)` pair of the `i`-th input point.
    #[inline]
    pub fn rank(&self, i: usize) -> (u32, u32) {
        self.ranks[i]
    }

    /// All rank pairs, aligned with the input slice.
    #[inline]
    pub fn ranks(&self) -> &[(u32, u32)] {
        &self.ranks
    }

    /// The curve value of the `i`-th input point under the given curve.
    #[inline]
    pub fn curve_value(&self, i: usize, curve: CurveKind) -> u64 {
        let (rx, ry) = self.ranks[i];
        curve.encode(rx, ry, self.order)
    }

    /// Curve values for all points, aligned with the input slice.
    pub fn curve_values(&self, curve: CurveKind) -> Vec<u64> {
        (0..self.ranks.len())
            .map(|i| self.curve_value(i, curve))
            .collect()
    }

    /// A permutation of the input indices sorted by ascending curve value.
    ///
    /// Packing every `B` consecutive indices of this permutation into a block
    /// realises the R-tree packing strategy the paper reuses (Equation 1).
    pub fn sorted_permutation(&self, curve: CurveKind) -> Vec<usize> {
        let values = self.curve_values(curve);
        let mut perm: Vec<usize> = (0..self.ranks.len()).collect();
        perm.sort_by_key(|&i| values[i]);
        perm
    }
}

fn cmp_x(a: &Point, b: &Point) -> std::cmp::Ordering {
    crate::rank_space::point_cmp_x(a, b)
}

fn cmp_y(a: &Point, b: &Point) -> std::cmp::Ordering {
    crate::rank_space::point_cmp_y(a, b)
}

/// Comparison by x, tie-break y, final tie-break id.
pub fn point_cmp_x(a: &Point, b: &Point) -> std::cmp::Ordering {
    a.x.partial_cmp(&b.x)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then(a.y.partial_cmp(&b.y).unwrap_or(std::cmp::Ordering::Equal))
        .then(a.id.cmp(&b.id))
}

/// Comparison by y, tie-break x, final tie-break id.
pub fn point_cmp_y(a: &Point, b: &Point) -> std::cmp::Ordering {
    a.y.partial_cmp(&b.y)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then(a.x.partial_cmp(&b.x).unwrap_or(std::cmp::Ordering::Equal))
        .then(a.id.cmp(&b.id))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_example() -> Vec<Point> {
        // Eight points roughly reproducing Fig. 3a of the paper; exact
        // coordinates do not matter, only the relative order.
        vec![
            Point::with_id(0.10, 0.20, 1),
            Point::with_id(0.05, 0.10, 2),
            Point::with_id(0.10, 0.45, 3),
            Point::with_id(0.30, 0.35, 4),
            Point::with_id(0.55, 0.30, 5),
            Point::with_id(0.40, 0.60, 6),
            Point::with_id(0.80, 0.75, 7),
            Point::with_id(0.90, 0.90, 8),
        ]
    }

    #[test]
    fn rank_space_order_is_ceil_log2() {
        assert_eq!(rank_space_order(1), 1);
        assert_eq!(rank_space_order(2), 1);
        assert_eq!(rank_space_order(3), 2);
        assert_eq!(rank_space_order(4), 2);
        assert_eq!(rank_space_order(5), 3);
        assert_eq!(rank_space_order(8), 3);
        assert_eq!(rank_space_order(9), 4);
        assert_eq!(rank_space_order(1_000_000), 20);
    }

    #[test]
    fn every_row_and_column_has_exactly_one_point() {
        let pts = paper_example();
        let rs = RankSpace::new(&pts);
        let n = pts.len();
        let mut xs = vec![false; n];
        let mut ys = vec![false; n];
        for i in 0..n {
            let (rx, ry) = rs.rank(i);
            assert!(!xs[rx as usize], "duplicate x-rank");
            assert!(!ys[ry as usize], "duplicate y-rank");
            xs[rx as usize] = true;
            ys[ry as usize] = true;
        }
        assert!(xs.iter().all(|&b| b));
        assert!(ys.iter().all(|&b| b));
    }

    #[test]
    fn x_ties_are_broken_by_y() {
        // p1 and p3 share an x-coordinate; p3 has the larger y so it must be
        // mapped to the later column (as in the paper's Fig. 3 narrative).
        let pts = paper_example();
        let rs = RankSpace::new(&pts);
        let r1 = rs.rank(0); // p1 at (0.10, 0.20)
        let r3 = rs.rank(2); // p3 at (0.10, 0.45)
        assert!(r1.0 < r3.0);
    }

    #[test]
    fn ranks_preserve_coordinate_order() {
        let pts = paper_example();
        let rs = RankSpace::new(&pts);
        for i in 0..pts.len() {
            for j in 0..pts.len() {
                if pts[i].x < pts[j].x {
                    assert!(rs.rank(i).0 < rs.rank(j).0);
                }
                if pts[i].y < pts[j].y {
                    assert!(rs.rank(i).1 < rs.rank(j).1);
                }
            }
        }
    }

    #[test]
    fn curve_values_are_unique_per_point() {
        let pts = paper_example();
        let rs = RankSpace::new(&pts);
        for curve in [CurveKind::Z, CurveKind::Hilbert] {
            let mut vals = rs.curve_values(curve);
            vals.sort_unstable();
            vals.dedup();
            assert_eq!(vals.len(), pts.len());
        }
    }

    #[test]
    fn sorted_permutation_sorts_by_curve_value() {
        let pts = paper_example();
        let rs = RankSpace::new(&pts);
        let curve = CurveKind::Hilbert;
        let perm = rs.sorted_permutation(curve);
        let vals: Vec<u64> = perm.iter().map(|&i| rs.curve_value(i, curve)).collect();
        assert!(vals.windows(2).all(|w| w[0] <= w[1]));
        // It is a permutation of 0..n.
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..pts.len()).collect::<Vec<_>>());
    }

    #[test]
    fn rank_space_gap_variance_is_smaller_than_raw_zvalue_gaps() {
        // The motivating claim of §3.1: ordering in rank space produces more
        // even gaps between consecutive curve values than applying the curve
        // to raw (skewed) coordinates.
        let mut pts = Vec::new();
        // Strongly skewed data: most points crammed into a corner.
        for i in 0..256u32 {
            let t = (i as f64 + 0.5) / 256.0;
            pts.push(Point::with_id(t.powi(6), t.powi(6), i as u64));
        }
        let rs = RankSpace::new(&pts);
        let order = 16;

        let gaps = |mut vals: Vec<u64>| -> f64 {
            vals.sort_unstable();
            let diffs: Vec<f64> = vals.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
            let mean = diffs.iter().sum::<f64>() / diffs.len() as f64;
            let var =
                diffs.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / diffs.len() as f64;
            // Coefficient-of-variation-like measure so scale differences do
            // not dominate.
            var.sqrt() / mean
        };

        let raw: Vec<u64> = pts
            .iter()
            .map(|p| crate::zcurve::encode_unit(p.x, p.y, order))
            .collect();
        let ranked = rs.curve_values(CurveKind::Z);
        assert!(
            gaps(ranked) < gaps(raw),
            "rank-space gaps should be more even than raw-space gaps"
        );
    }
}
