//! Blocking client for the wire protocol.
//!
//! One [`NetClient`] owns one TCP connection and runs one request at a
//! time (send, then block for the response) — the closed-loop shape.  An
//! open-loop load generator can instead pipeline raw frames itself through
//! [`crate::wire`] over a [`std::net::TcpStream`] pair (see
//! `bench::netload`); the server guarantees responses arrive in request
//! order per connection.

use crate::wire::{self, ErrorCode, Request, Response};
use crate::NetError;
use geom::{Point, Rect};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A blocking connection to a serving front-end.
pub struct NetClient {
    stream: TcpStream,
}

impl NetClient {
    /// Connects to `addr` (e.g. `"127.0.0.1:7878"`).
    pub fn connect(addr: &str) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Self { stream })
    }

    /// Connects, retrying until `deadline` elapses — for racing a server
    /// that is still binding its listener (CI starts the server as a
    /// background process).
    pub fn connect_retry(addr: &str, deadline: Duration) -> Result<Self, NetError> {
        let until = Instant::now() + deadline;
        loop {
            match Self::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) => {
                    if Instant::now() >= until {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(25));
                }
            }
        }
    }

    /// The underlying stream (for splitting into an open-loop sender /
    /// receiver pair via [`TcpStream::try_clone`]).
    pub fn into_stream(self) -> TcpStream {
        self.stream
    }

    fn call(&mut self, req: &Request) -> Result<Response, NetError> {
        wire::write_frame(&mut self.stream, &req.encode())?;
        let payload = wire::read_frame(&mut self.stream)?.ok_or(NetError::Closed)?;
        match Response::decode(&payload)? {
            Response::Error { code, message } => Err(match code {
                ErrorCode::Overload => NetError::Overload,
                ErrorCode::ShuttingDown => NetError::ShuttingDown,
                ErrorCode::BadRequest => NetError::Remote(message),
            }),
            resp => Ok(resp),
        }
    }

    /// Point lookup; returns the observed write sequence and the hit.
    pub fn point(&mut self, q: &Point) -> Result<(u64, Option<Point>), NetError> {
        match self.call(&Request::Point(*q))? {
            Response::Point { seq, hit } => Ok((seq, hit)),
            other => Err(unexpected(&other)),
        }
    }

    /// Window query; returns the observed write sequence and the matches.
    pub fn window(&mut self, w: &Rect) -> Result<(u64, Vec<Point>), NetError> {
        match self.call(&Request::Window(*w))? {
            Response::Points { seq, points } => Ok((seq, points)),
            other => Err(unexpected(&other)),
        }
    }

    /// kNN query; the result is closest first, distance ties by id.
    pub fn knn(&mut self, q: &Point, k: u32) -> Result<(u64, Vec<Point>), NetError> {
        match self.call(&Request::Knn(*q, k))? {
            Response::Knn { seq, points } => Ok((seq, points)),
            other => Err(unexpected(&other)),
        }
    }

    /// Distance-range query around `center`.
    pub fn range(&mut self, center: &Point, radius: f64) -> Result<(u64, Vec<Point>), NetError> {
        match self.call(&Request::Range(*center, radius))? {
            Response::Points { seq, points } => Ok((seq, points)),
            other => Err(unexpected(&other)),
        }
    }

    /// Distance-join probe batch: every (probe, match) pair within
    /// `radius`.
    pub fn join_probes(
        &mut self,
        probes: &[Point],
        radius: f64,
    ) -> Result<(u64, Vec<(Point, Point)>), NetError> {
        match self.call(&Request::JoinProbes(probes.to_vec(), radius))? {
            Response::Pairs { seq, pairs } => Ok((seq, pairs)),
            other => Err(unexpected(&other)),
        }
    }

    /// Inserts `p` through the server's delta overlay; returns the write's
    /// sequence number.
    pub fn insert(&mut self, p: &Point) -> Result<u64, NetError> {
        match self.call(&Request::Insert(*p))? {
            Response::Written { seq, .. } => Ok(seq),
            other => Err(unexpected(&other)),
        }
    }

    /// Deletes `p` through the server's delta overlay; returns whether the
    /// point existed and the write's sequence number.
    pub fn delete(&mut self, p: &Point) -> Result<(bool, u64), NetError> {
        match self.call(&Request::Delete(*p))? {
            Response::Written { seq, removed } => Ok((removed, seq)),
            other => Err(unexpected(&other)),
        }
    }

    /// Health check; returns the server's current write sequence.
    pub fn ping(&mut self) -> Result<u64, NetError> {
        match self.call(&Request::Ping)? {
            Response::Pong { seq } => Ok(seq),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the server to drain and stop; the acknowledgement arrives
    /// before the drain begins.
    pub fn shutdown_server(&mut self) -> Result<(), NetError> {
        match self.call(&Request::Shutdown)? {
            Response::Pong { .. } => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Scrapes the server's live metrics registry; returns the observed
    /// write sequence and the decoded snapshot.  Answered inline (bypasses
    /// admission control), so it works even against an overloaded or
    /// draining server.
    pub fn stats(&mut self) -> Result<(u64, obs::MetricsSnapshot), NetError> {
        match self.call(&Request::Stats)? {
            Response::Stats { seq, metrics } => Ok((seq, metrics)),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches journalled lifecycle events with sequence numbers greater
    /// than `since` (0 = everything the bounded journal retains).
    pub fn events(&mut self, since: u64) -> Result<(u64, obs::EventsSnapshot), NetError> {
        match self.call(&Request::Events { since })? {
            Response::Events { seq, events } => Ok((seq, events)),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(resp: &Response) -> NetError {
    NetError::Corrupt(format!("unexpected response variant: {resp:?}"))
}
