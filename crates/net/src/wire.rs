//! The wire protocol: length-prefixed binary frames carrying one request or
//! one response each, little-endian throughout, CRC-protected.
//!
//! The encoding deliberately mirrors the `persist` snapshot format (same
//! little-endian scalar layout, same length-prefix-then-validate discipline,
//! same IEEE CRC via [`persist::crc32`]) so there is exactly one set of
//! framing conventions in the codebase.  One frame looks like:
//!
//! ```text
//! offset  size  field
//! 0       4     magic, the bytes "RNET"
//! 4       2     protocol version, u16 LE (currently 2)
//! 6       4     payload length in bytes, u32 LE (<= MAX_FRAME_LEN)
//! 10      len   payload (first payload byte is the message tag)
//! 10+len  4     CRC32 (IEEE) of the payload bytes, u32 LE
//! ```
//!
//! Decoding is defensive in the same way `persist::SnapshotReader` is: the
//! length prefix is validated against [`MAX_FRAME_LEN`] **before** any
//! allocation, element counts inside the payload are validated against the
//! bytes actually present (`get_len`-style), and every malformed input maps
//! to a typed [`NetError`] — never a panic, never an unbounded allocation.

use crate::NetError;
use geom::{Point, Rect};
use std::io::{Read, Write};

/// Magic bytes opening every frame in either direction.
pub const MAGIC: [u8; 4] = *b"RNET";

/// Wire protocol version; bumped on any incompatible layout change.
/// Version 2 added the `STATS`/`EVENTS` telemetry tags; every version-1
/// tag is unchanged, so version-1 frames are still accepted (see
/// [`MIN_PROTOCOL_VERSION`]).
pub const PROTOCOL_VERSION: u16 = 2;

/// Oldest protocol version [`read_frame`] still accepts.
pub const MIN_PROTOCOL_VERSION: u16 = 1;

/// Upper bound on a frame payload.  A length prefix above this is rejected
/// before any buffer is allocated, so a corrupt (or hostile) length field
/// cannot OOM the server.
pub const MAX_FRAME_LEN: u32 = 8 * 1024 * 1024;

/// Frame header size: magic + version + payload length.
pub const HEADER_LEN: usize = 4 + 2 + 4;

// Request message tags (first payload byte).
const TAG_POINT: u8 = 0x01;
const TAG_WINDOW: u8 = 0x02;
const TAG_KNN: u8 = 0x03;
const TAG_RANGE: u8 = 0x04;
const TAG_JOIN_PROBES: u8 = 0x05;
const TAG_INSERT: u8 = 0x06;
const TAG_DELETE: u8 = 0x07;
const TAG_PING: u8 = 0x08;
const TAG_SHUTDOWN: u8 = 0x09;
// Protocol version 2: live telemetry scrapes.
const TAG_STATS: u8 = 0x0A;
const TAG_EVENTS: u8 = 0x0B;

// Response message tags.  The high bit distinguishes responses from
// requests so a desynchronised peer fails fast with a Corrupt error.
const TAG_RESP_POINT: u8 = 0x81;
const TAG_RESP_POINTS: u8 = 0x82;
const TAG_RESP_KNN: u8 = 0x83;
const TAG_RESP_PAIRS: u8 = 0x84;
const TAG_RESP_WRITTEN: u8 = 0x85;
const TAG_RESP_PONG: u8 = 0x86;
const TAG_RESP_ERROR: u8 = 0x87;
// Protocol version 2: live telemetry scrapes.
const TAG_RESP_STATS: u8 = 0x88;
const TAG_RESP_EVENTS: u8 = 0x89;

/// Typed server-side refusal codes carried by an error response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Admission control shed the request (a bounded queue was full).
    Overload,
    /// The request decoded but was semantically invalid (e.g. a negative
    /// or non-finite radius).
    BadRequest,
    /// The server is draining: in-flight requests finish, new ones are
    /// refused.
    ShuttingDown,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::Overload => 1,
            ErrorCode::BadRequest => 2,
            ErrorCode::ShuttingDown => 3,
        }
    }

    fn from_u8(v: u8) -> Result<Self, NetError> {
        match v {
            1 => Ok(ErrorCode::Overload),
            2 => Ok(ErrorCode::BadRequest),
            3 => Ok(ErrorCode::ShuttingDown),
            other => Err(NetError::Corrupt(format!(
                "unknown error code {other:#04x}"
            ))),
        }
    }
}

/// One client request: the five query classes plus the two delta-overlay
/// writes and the two control messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Exact point lookup.
    Point(Point),
    /// Window (rectangle containment) query.
    Window(Rect),
    /// k-nearest-neighbour query.
    Knn(Point, u32),
    /// Distance-range query: all points within `radius` of the centre.
    Range(Point, f64),
    /// Distance-join probe batch: for every probe, all points within
    /// `radius` of it, returned as (probe, match) pairs.
    JoinProbes(Vec<Point>, f64),
    /// Insert into the server's delta overlay.
    Insert(Point),
    /// Delete through the server's delta overlay.
    Delete(Point),
    /// Health check; the response carries the current write sequence.
    Ping,
    /// Ask the server to drain in-flight work and stop accepting new
    /// requests.  Acknowledged with a pong before the drain begins.
    Shutdown,
    /// Scrape the server's live metrics registry (protocol version 2).
    /// Answered inline like `Ping` — telemetry reads bypass admission
    /// control so an overloaded server can still be observed.
    Stats,
    /// Fetch journalled lifecycle events with sequence numbers greater
    /// than `since` (0 = everything retained; protocol version 2).
    Events {
        /// Last event sequence number the client has already seen.
        since: u64,
    },
}

/// One server response.  Every data-bearing response carries the write
/// sequence number ([`server::Snapshot::seq`]) its snapshot observed, which
/// is what lets clients replay-verify networked answers against an oracle.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Point-query answer.
    Point {
        /// Observed write sequence.
        seq: u64,
        /// The hit, if any.
        hit: Option<Point>,
    },
    /// Window or distance-range result set.
    Points {
        /// Observed write sequence.
        seq: u64,
        /// Matching points (window: unspecified order; range: unspecified
        /// order).
        points: Vec<Point>,
    },
    /// kNN result, closest first (the order is part of the contract).
    Knn {
        /// Observed write sequence.
        seq: u64,
        /// The k nearest points, closest first, distance ties by id.
        points: Vec<Point>,
    },
    /// Distance-join probe result.
    Pairs {
        /// Observed write sequence.
        seq: u64,
        /// (probe, match) pairs in probe order.
        pairs: Vec<(Point, Point)>,
    },
    /// Acknowledgement of an insert or delete.
    Written {
        /// Sequence number assigned to the write.
        seq: u64,
        /// For deletes: whether the point existed.  Always `true` for
        /// inserts.
        removed: bool,
    },
    /// Ping/shutdown acknowledgement.
    Pong {
        /// Current write sequence at the server.
        seq: u64,
    },
    /// Typed refusal; see [`ErrorCode`].
    Error {
        /// Why the request was refused.
        code: ErrorCode,
        /// Operator-facing detail.
        message: String,
    },
    /// Live metrics snapshot (protocol version 2).
    Stats {
        /// Current write sequence at the server.
        seq: u64,
        /// Every registered counter, gauge, and histogram.
        metrics: obs::MetricsSnapshot,
    },
    /// Journalled lifecycle events (protocol version 2).
    Events {
        /// Current write sequence at the server.
        seq: u64,
        /// The retained events (filtered by the request's `since`).
        events: obs::EventsSnapshot,
    },
}

/// Maps a telemetry-codec failure onto the wire error taxonomy.
fn obs_err(e: obs::ObsError) -> NetError {
    match e {
        obs::ObsError::Truncated => NetError::Truncated,
        other => NetError::Corrupt(format!("telemetry payload: {other}")),
    }
}

/// Little-endian payload writer, mirroring `persist::SnapshotWriter`'s
/// scalar conventions.
#[derive(Default)]
struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_point(&mut self, p: &Point) {
        self.put_f64(p.x);
        self.put_f64(p.y);
        self.put_u64(p.id);
    }

    fn put_rect(&mut self, r: &Rect) {
        self.put_f64(r.min_x);
        self.put_f64(r.min_y);
        self.put_f64(r.max_x);
        self.put_f64(r.max_y);
    }

    fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Bounds-checked payload reader, mirroring `persist::SnapshotReader`'s
/// `take`/`get_len` discipline: every read is validated against the bytes
/// actually present, and element counts are rejected when the claimed
/// elements cannot fit in the remaining payload.
struct WireReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], NetError> {
        if self
            .pos
            .checked_add(n)
            .is_none_or(|end| end > self.data.len())
        {
            return Err(NetError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn get_u8(&mut self) -> Result<u8, NetError> {
        Ok(self.take(1)?[0])
    }

    fn get_u32(&mut self) -> Result<u32, NetError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn get_u64(&mut self) -> Result<u64, NetError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn get_f64(&mut self) -> Result<f64, NetError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an element count and rejects it when `count * min_elem_bytes`
    /// exceeds the bytes still present — a corrupt count cannot drive an
    /// allocation larger than the payload that carried it.
    fn get_len(&mut self, min_elem_bytes: usize) -> Result<usize, NetError> {
        let n = self.get_u32()? as usize;
        if n.checked_mul(min_elem_bytes.max(1))
            .is_none_or(|bytes| bytes > self.remaining())
        {
            return Err(NetError::Corrupt(format!(
                "element count {n} exceeds remaining payload ({} bytes)",
                self.remaining()
            )));
        }
        Ok(n)
    }

    fn get_point(&mut self) -> Result<Point, NetError> {
        let x = self.get_f64()?;
        let y = self.get_f64()?;
        let id = self.get_u64()?;
        Ok(Point::with_id(x, y, id))
    }

    fn get_rect(&mut self) -> Result<Rect, NetError> {
        let min_x = self.get_f64()?;
        let min_y = self.get_f64()?;
        let max_x = self.get_f64()?;
        let max_y = self.get_f64()?;
        Ok(Rect {
            min_x,
            min_y,
            max_x,
            max_y,
        })
    }

    fn get_str(&mut self) -> Result<String, NetError> {
        let n = self.get_len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| NetError::Corrupt("error message is not UTF-8".into()))
    }

    /// Rejects trailing bytes — a well-formed payload is consumed exactly.
    fn finish(self) -> Result<(), NetError> {
        if self.remaining() != 0 {
            return Err(NetError::Corrupt(format!(
                "{} trailing bytes after message",
                self.remaining()
            )));
        }
        Ok(())
    }
}

const POINT_BYTES: usize = 24;

impl Request {
    /// Encodes the request into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::default();
        match self {
            Request::Point(p) => {
                w.put_u8(TAG_POINT);
                w.put_point(p);
            }
            Request::Window(r) => {
                w.put_u8(TAG_WINDOW);
                w.put_rect(r);
            }
            Request::Knn(p, k) => {
                w.put_u8(TAG_KNN);
                w.put_point(p);
                w.put_u32(*k);
            }
            Request::Range(p, radius) => {
                w.put_u8(TAG_RANGE);
                w.put_point(p);
                w.put_f64(*radius);
            }
            Request::JoinProbes(probes, radius) => {
                w.put_u8(TAG_JOIN_PROBES);
                w.put_f64(*radius);
                w.put_u32(probes.len() as u32);
                for p in probes {
                    w.put_point(p);
                }
            }
            Request::Insert(p) => {
                w.put_u8(TAG_INSERT);
                w.put_point(p);
            }
            Request::Delete(p) => {
                w.put_u8(TAG_DELETE);
                w.put_point(p);
            }
            Request::Ping => w.put_u8(TAG_PING),
            Request::Shutdown => w.put_u8(TAG_SHUTDOWN),
            Request::Stats => w.put_u8(TAG_STATS),
            Request::Events { since } => {
                w.put_u8(TAG_EVENTS);
                w.put_u64(*since);
            }
        }
        w.buf
    }

    /// Decodes a frame payload into a request, consuming it exactly.
    pub fn decode(payload: &[u8]) -> Result<Request, NetError> {
        let mut r = WireReader::new(payload);
        let req = match r.get_u8()? {
            TAG_POINT => Request::Point(r.get_point()?),
            TAG_WINDOW => Request::Window(r.get_rect()?),
            TAG_KNN => {
                let p = r.get_point()?;
                let k = r.get_u32()?;
                Request::Knn(p, k)
            }
            TAG_RANGE => {
                let p = r.get_point()?;
                let radius = r.get_f64()?;
                Request::Range(p, radius)
            }
            TAG_JOIN_PROBES => {
                let radius = r.get_f64()?;
                let n = r.get_len(POINT_BYTES)?;
                let mut probes = Vec::with_capacity(n);
                for _ in 0..n {
                    probes.push(r.get_point()?);
                }
                Request::JoinProbes(probes, radius)
            }
            TAG_INSERT => Request::Insert(r.get_point()?),
            TAG_DELETE => Request::Delete(r.get_point()?),
            TAG_PING => Request::Ping,
            TAG_SHUTDOWN => Request::Shutdown,
            TAG_STATS => Request::Stats,
            TAG_EVENTS => Request::Events {
                since: r.get_u64()?,
            },
            other => {
                return Err(NetError::Corrupt(format!(
                    "unknown request tag {other:#04x}"
                )))
            }
        };
        r.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Encodes the response into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::default();
        match self {
            Response::Point { seq, hit } => {
                w.put_u8(TAG_RESP_POINT);
                w.put_u64(*seq);
                match hit {
                    Some(p) => {
                        w.put_u8(1);
                        w.put_point(p);
                    }
                    None => w.put_u8(0),
                }
            }
            Response::Points { seq, points } => {
                w.put_u8(TAG_RESP_POINTS);
                w.put_u64(*seq);
                w.put_u32(points.len() as u32);
                for p in points {
                    w.put_point(p);
                }
            }
            Response::Knn { seq, points } => {
                w.put_u8(TAG_RESP_KNN);
                w.put_u64(*seq);
                w.put_u32(points.len() as u32);
                for p in points {
                    w.put_point(p);
                }
            }
            Response::Pairs { seq, pairs } => {
                w.put_u8(TAG_RESP_PAIRS);
                w.put_u64(*seq);
                w.put_u32(pairs.len() as u32);
                for (a, b) in pairs {
                    w.put_point(a);
                    w.put_point(b);
                }
            }
            Response::Written { seq, removed } => {
                w.put_u8(TAG_RESP_WRITTEN);
                w.put_u64(*seq);
                w.put_u8(u8::from(*removed));
            }
            Response::Pong { seq } => {
                w.put_u8(TAG_RESP_PONG);
                w.put_u64(*seq);
            }
            Response::Error { code, message } => {
                w.put_u8(TAG_RESP_ERROR);
                w.put_u8(code.to_u8());
                w.put_str(message);
            }
            Response::Stats { seq, metrics } => {
                w.put_u8(TAG_RESP_STATS);
                w.put_u64(*seq);
                let inner = metrics.encode();
                w.put_u32(inner.len() as u32);
                w.buf.extend_from_slice(&inner);
            }
            Response::Events { seq, events } => {
                w.put_u8(TAG_RESP_EVENTS);
                w.put_u64(*seq);
                let inner = events.encode();
                w.put_u32(inner.len() as u32);
                w.buf.extend_from_slice(&inner);
            }
        }
        w.buf
    }

    /// Decodes a frame payload into a response, consuming it exactly.
    pub fn decode(payload: &[u8]) -> Result<Response, NetError> {
        let mut r = WireReader::new(payload);
        let resp = match r.get_u8()? {
            TAG_RESP_POINT => {
                let seq = r.get_u64()?;
                let hit = match r.get_u8()? {
                    0 => None,
                    1 => Some(r.get_point()?),
                    other => {
                        return Err(NetError::Corrupt(format!(
                            "bad option discriminant {other}"
                        )))
                    }
                };
                Response::Point { seq, hit }
            }
            TAG_RESP_POINTS => {
                let seq = r.get_u64()?;
                let n = r.get_len(POINT_BYTES)?;
                let mut points = Vec::with_capacity(n);
                for _ in 0..n {
                    points.push(r.get_point()?);
                }
                Response::Points { seq, points }
            }
            TAG_RESP_KNN => {
                let seq = r.get_u64()?;
                let n = r.get_len(POINT_BYTES)?;
                let mut points = Vec::with_capacity(n);
                for _ in 0..n {
                    points.push(r.get_point()?);
                }
                Response::Knn { seq, points }
            }
            TAG_RESP_PAIRS => {
                let seq = r.get_u64()?;
                let n = r.get_len(2 * POINT_BYTES)?;
                let mut pairs = Vec::with_capacity(n);
                for _ in 0..n {
                    let a = r.get_point()?;
                    let b = r.get_point()?;
                    pairs.push((a, b));
                }
                Response::Pairs { seq, pairs }
            }
            TAG_RESP_WRITTEN => {
                let seq = r.get_u64()?;
                let removed = r.get_u8()? != 0;
                Response::Written { seq, removed }
            }
            TAG_RESP_PONG => Response::Pong { seq: r.get_u64()? },
            TAG_RESP_ERROR => {
                let code = ErrorCode::from_u8(r.get_u8()?)?;
                let message = r.get_str()?;
                Response::Error { code, message }
            }
            TAG_RESP_STATS => {
                let seq = r.get_u64()?;
                let n = r.get_len(1)?;
                let metrics = obs::MetricsSnapshot::decode(r.take(n)?).map_err(obs_err)?;
                Response::Stats { seq, metrics }
            }
            TAG_RESP_EVENTS => {
                let seq = r.get_u64()?;
                let n = r.get_len(1)?;
                let events = obs::EventsSnapshot::decode(r.take(n)?).map_err(obs_err)?;
                Response::Events { seq, events }
            }
            other => {
                return Err(NetError::Corrupt(format!(
                    "unknown response tag {other:#04x}"
                )))
            }
        };
        r.finish()?;
        Ok(resp)
    }
}

/// Encodes a payload into a complete frame (header + payload + CRC).
///
/// Panics if `payload` exceeds [`MAX_FRAME_LEN`]; all payloads produced by
/// this module are far below the cap.
pub fn frame_bytes(payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= MAX_FRAME_LEN as usize, "frame too large");
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len() + 4);
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    buf.extend_from_slice(&persist::crc32(payload).to_le_bytes());
    buf
}

/// Writes one frame to `w`.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), NetError> {
    w.write_all(&frame_bytes(payload)).map_err(NetError::Io)?;
    w.flush().map_err(NetError::Io)
}

/// Reads exactly `buf.len()` bytes.  A clean EOF before the first byte
/// returns `Ok(false)` when `at_start` is set; any other short read is
/// [`NetError::Truncated`].
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8], at_start: bool) -> Result<bool, NetError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 && at_start {
                    Ok(false)
                } else {
                    Err(NetError::Truncated)
                }
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(NetError::Io(e)),
        }
    }
    Ok(true)
}

/// Reads one frame and returns its CRC-verified payload, or `Ok(None)` on a
/// clean EOF at a frame boundary (the peer closed the connection between
/// messages).  Every malformed input maps to a typed [`NetError`]: wrong
/// magic is [`NetError::BadMagic`], an unknown version is
/// [`NetError::UnsupportedVersion`], a length prefix above
/// [`MAX_FRAME_LEN`] is [`NetError::FrameTooLarge`] (rejected before
/// allocation), a short read is [`NetError::Truncated`], and a CRC failure
/// is [`NetError::ChecksumMismatch`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, NetError> {
    let mut header = [0u8; HEADER_LEN];
    if !read_exact_or_eof(r, &mut header, true)? {
        return Ok(None);
    }
    if header[..4] != MAGIC {
        return Err(NetError::BadMagic);
    }
    let version = u16::from_le_bytes(header[4..6].try_into().unwrap());
    if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) {
        return Err(NetError::UnsupportedVersion(version));
    }
    let len = u32::from_le_bytes(header[6..10].try_into().unwrap());
    if len > MAX_FRAME_LEN {
        return Err(NetError::FrameTooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_or_eof(r, &mut payload, false)?;
    let mut crc = [0u8; 4];
    read_exact_or_eof(r, &mut crc, false)?;
    if u32::from_le_bytes(crc) != persist::crc32(&payload) {
        return Err(NetError::ChecksumMismatch);
    }
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let payload = req.encode();
        assert_eq!(Request::decode(&payload).unwrap(), req);
    }

    fn roundtrip_response(resp: Response) {
        let payload = resp.encode();
        assert_eq!(Response::decode(&payload).unwrap(), resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Point(Point::with_id(0.25, -1.5, 7)));
        roundtrip_request(Request::Window(Rect::new(0.0, 0.0, 1.0, 1.0)));
        roundtrip_request(Request::Knn(Point::with_id(0.5, 0.5, 0), 25));
        roundtrip_request(Request::Range(Point::new(0.1, 0.9), 0.02));
        roundtrip_request(Request::JoinProbes(
            vec![Point::with_id(0.1, 0.2, 1), Point::with_id(0.3, 0.4, 2)],
            0.05,
        ));
        roundtrip_request(Request::Insert(Point::with_id(0.7, 0.7, 99)));
        roundtrip_request(Request::Delete(Point::with_id(0.7, 0.7, 99)));
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::Shutdown);
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Events { since: 42 });
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_response(Response::Point {
            seq: 42,
            hit: Some(Point::with_id(1.0, 2.0, 3)),
        });
        roundtrip_response(Response::Point { seq: 0, hit: None });
        roundtrip_response(Response::Points {
            seq: 7,
            points: vec![Point::with_id(0.0, 0.0, 1)],
        });
        roundtrip_response(Response::Knn {
            seq: 7,
            points: vec![Point::with_id(0.0, 0.0, 1), Point::with_id(1.0, 1.0, 2)],
        });
        roundtrip_response(Response::Pairs {
            seq: 9,
            pairs: vec![(Point::with_id(0.0, 0.0, 1), Point::with_id(0.1, 0.1, 2))],
        });
        roundtrip_response(Response::Written {
            seq: 11,
            removed: true,
        });
        roundtrip_response(Response::Pong { seq: 12 });
        roundtrip_response(Response::Error {
            code: ErrorCode::Overload,
            message: "queue full".into(),
        });
        let t = obs::Telemetry::new();
        t.metrics.counter("net.requests.point").add(5);
        t.metrics.histogram("net.latency_us.knn").record(120);
        t.journal.record(obs::EventKind::ServerStart { points: 9 });
        roundtrip_response(Response::Stats {
            seq: 13,
            metrics: t.metrics.snapshot(),
        });
        roundtrip_response(Response::Events {
            seq: 14,
            events: t.journal.snapshot(),
        });
    }

    #[test]
    fn version_one_frames_are_still_accepted() {
        let payload = Request::Ping.encode();
        let mut frame = frame_bytes(&payload);
        frame[4..6].copy_from_slice(&1u16.to_le_bytes());
        let mut cursor = std::io::Cursor::new(frame);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), payload);
    }

    #[test]
    fn frames_roundtrip_through_io() {
        let payload = Request::Knn(Point::new(0.5, 0.5), 5).encode();
        let frame = frame_bytes(&payload);
        let mut cursor = std::io::Cursor::new(frame);
        let back = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(back, payload);
        // A second read sees a clean EOF at the frame boundary.
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn coordinates_survive_bit_exactly() {
        // Byte-identical answers require bit-exact f64 transport, including
        // awkward values.
        for v in [0.1 + 0.2, f64::MIN_POSITIVE, -0.0, 1e300] {
            let p = Point::with_id(v, -v, u64::MAX);
            let payload = Request::Point(p).encode();
            match Request::decode(&payload).unwrap() {
                Request::Point(q) => {
                    assert_eq!(q.x.to_bits(), p.x.to_bits());
                    assert_eq!(q.y.to_bits(), p.y.to_bits());
                    assert_eq!(q.id, p.id);
                }
                other => panic!("decoded {other:?}"),
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = Request::Ping.encode();
        payload.push(0);
        assert!(matches!(
            Request::decode(&payload),
            Err(NetError::Corrupt(_))
        ));
    }

    #[test]
    fn bogus_probe_count_is_rejected_without_allocation() {
        // A JoinProbes payload claiming u32::MAX probes but carrying none.
        let mut w = Vec::new();
        w.push(TAG_JOIN_PROBES);
        w.extend_from_slice(&0.05f64.to_le_bytes());
        w.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(Request::decode(&w), Err(NetError::Corrupt(_))));
    }
}
