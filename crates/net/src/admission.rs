//! Bounded-in-flight admission control, shared by the single-process
//! serving loop ([`crate::server_loop`]) and the distributed router
//! (`crates/router`).
//!
//! The mechanism is two bounded counters: a global in-flight window and a
//! per-connection window.  When either is exhausted the request must be
//! shed immediately with a typed `OVERLOAD` response instead of queueing
//! unboundedly — the connection stays healthy and later requests are
//! admitted again as soon as in-flight work drains.  Both front-ends speak
//! the same shedding contract, so a load generator observes identical
//! behaviour against a shard server and against the router fronting it.

use obs::Gauge;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The two-window admission gate.  `try_admit` / `release` are a handful
/// of atomic ops; nothing here takes a lock.
pub struct AdmissionGate {
    /// Remaining global admission tokens.
    global_tokens: AtomicUsize,
    global_cap: usize,
    per_conn_cap: usize,
    /// `*.inflight`: admission tokens currently held.
    inflight_gauge: Gauge,
}

/// One connection's admission window (its in-flight count).
#[derive(Default)]
pub struct ConnSlots {
    inflight: AtomicUsize,
}

impl AdmissionGate {
    /// A gate with the given global and per-connection windows, reporting
    /// held tokens through `inflight_gauge`.
    pub fn new(global_cap: usize, per_conn_cap: usize, inflight_gauge: Gauge) -> Self {
        Self {
            global_tokens: AtomicUsize::new(global_cap),
            global_cap,
            per_conn_cap,
            inflight_gauge,
        }
    }

    /// Tries to admit one request on `conn`; `false` means the request
    /// must be shed with an `OVERLOAD` response.
    pub fn try_admit(&self, conn: &ConnSlots) -> bool {
        if self
            .global_tokens
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |t| t.checked_sub(1))
            .is_err()
        {
            return false;
        }
        let admitted = conn
            .inflight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < self.per_conn_cap).then_some(n + 1)
            })
            .is_ok();
        if !admitted {
            self.global_tokens.fetch_add(1, Ordering::AcqRel);
        } else {
            self.inflight_gauge.add(1);
        }
        admitted
    }

    /// Returns one admitted request's tokens.
    pub fn release(&self, conn: &ConnSlots) {
        conn.inflight.fetch_sub(1, Ordering::AcqRel);
        self.global_tokens.fetch_add(1, Ordering::AcqRel);
        self.inflight_gauge.add(-1);
    }

    /// Requests currently admitted (held tokens) — the "drained" count a
    /// graceful shutdown reports.
    pub fn inflight(&self) -> u64 {
        (self.global_cap
            - self
                .global_tokens
                .load(Ordering::Acquire)
                .min(self.global_cap)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::Telemetry;

    #[test]
    fn windows_bound_admission_and_release_reopens_them() {
        let t = Telemetry::new();
        let gate = AdmissionGate::new(2, 1, t.metrics.gauge("test.inflight"));
        let a = ConnSlots::default();
        let b = ConnSlots::default();
        assert!(gate.try_admit(&a));
        // Per-connection window of 1 is exhausted for `a`...
        assert!(!gate.try_admit(&a));
        // ...but other connections still fit under the global window.
        assert!(gate.try_admit(&b));
        // Global window of 2 is now exhausted for everyone.
        let c = ConnSlots::default();
        assert!(!gate.try_admit(&c));
        assert_eq!(gate.inflight(), 2);
        gate.release(&a);
        assert!(gate.try_admit(&c));
        gate.release(&b);
        gate.release(&c);
        assert_eq!(gate.inflight(), 0);
        assert_eq!(t.metrics.snapshot().gauge("test.inflight"), Some(0));
    }
}
