//! The admission-controlled TCP server.
//!
//! Topology: an acceptor pool (thread-per-core by default) blocks on the
//! shared `TcpListener`; each accepted connection gets a reader thread and
//! a writer thread.  Readers decode frames, run admission control, and
//! push admitted requests onto one global job queue; a worker pool drains
//! that queue in micro-batches, pins **one** [`server::Snapshot`] per
//! batch, and answers every read in the batch through the snapshot's
//! batch entry points (`point_queries` / `window_queries` / `knn_queries`
//! / `range_queries`).  Responses are routed back to each connection's
//! ordered outbox, so a pipelining client always receives responses in
//! request order.
//!
//! Admission control is two bounded counters — per-connection in-flight
//! and global in-flight.  When either is exhausted the request is **shed**
//! immediately with a typed `OVERLOAD` response instead of queueing
//! unboundedly; the connection stays healthy and later requests are
//! admitted again as soon as in-flight work drains.
//!
//! Shutdown (via [`NetHandle::shutdown`] or a wire `Shutdown` request)
//! drains: the acceptors stop accepting, every connection's read half is
//! shut down so readers stop admitting new work, in-flight batches run to
//! completion and their responses are flushed, and only then do the
//! threads exit.  [`NetHandle::join`] (also run on drop) collects every
//! thread — nothing is leaked.

use crate::admission::{AdmissionGate, ConnSlots};
use crate::wire::{self, ErrorCode, Request, Response};
use crate::NetError;
use common::QueryContext;
use geom::Point;
use obs::{Counter, EventKind, Gauge, Histogram, Telemetry};
use server::SpatialServer;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Upper bound accepted for a kNN `k` — far above any workload in the
/// paper (max 625), low enough that a hostile `k` cannot drive a
/// pathological allocation.
pub const MAX_KNN_K: u32 = 65_536;

/// Tuning knobs for the serving loop.  The defaults suit the CI smoke
/// workload; tests shrink the admission bounds to force shedding
/// deterministically.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Acceptor threads blocking on the listener (thread-per-core capped
    /// at 4 by default — accepting is cheap).
    pub acceptors: usize,
    /// Worker threads draining the batch queue (thread-per-core capped at
    /// 8 by default).
    pub workers: usize,
    /// Maximum requests coalesced into one micro-batch (one pinned
    /// snapshot).
    pub batch_max: usize,
    /// Bounded per-connection in-flight admission window.
    pub per_conn_inflight: usize,
    /// Bounded global in-flight admission window.
    pub global_inflight: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map_or(2, |n| n.get());
        Self {
            acceptors: cores.clamp(1, 4),
            workers: cores.clamp(1, 8),
            batch_max: 32,
            per_conn_inflight: 64,
            global_inflight: 1024,
        }
    }
}

impl NetConfig {
    /// Overrides the acceptor pool size.
    pub fn with_acceptors(mut self, n: usize) -> Self {
        self.acceptors = n.max(1);
        self
    }

    /// Overrides the worker pool size.
    pub fn with_workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Overrides the micro-batch cap.
    pub fn with_batch_max(mut self, n: usize) -> Self {
        self.batch_max = n.max(1);
        self
    }

    /// Overrides the per-connection in-flight admission window (0 sheds
    /// everything — useful in tests).
    pub fn with_per_conn_inflight(mut self, n: usize) -> Self {
        self.per_conn_inflight = n;
        self
    }

    /// Overrides the global in-flight admission window (0 sheds
    /// everything — useful in tests).
    pub fn with_global_inflight(mut self, n: usize) -> Self {
        self.global_inflight = n;
        self
    }
}

impl From<&server::ServeConfig> for NetConfig {
    /// The network subset of the unified serving configuration.
    fn from(cfg: &server::ServeConfig) -> Self {
        Self {
            acceptors: cfg.acceptors.max(1),
            workers: cfg.workers.max(1),
            batch_max: cfg.batch_max.max(1),
            per_conn_inflight: cfg.per_conn_inflight,
            global_inflight: cfg.global_inflight,
        }
    }
}

/// A point-in-time sample of the serving counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct NetStats {
    /// Connections accepted since start.
    pub connections: u64,
    /// Requests fully decoded (including ones later shed).
    pub requests: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Requests answered through micro-batches (`batched / batches` is the
    /// mean coalescing factor).
    pub batched: u64,
}

#[derive(Default)]
struct StatCounters {
    connections: AtomicU64,
    requests: AtomicU64,
    shed: AtomicU64,
    batches: AtomicU64,
    batched: AtomicU64,
}

/// The request classes tracked per-class by telemetry, in tag order.  The
/// labels match the load generator's class names
/// (`crates/bench/src/netload.rs`), so a scraped `net.requests.<class>`
/// counter reconciles directly against client-side per-class counts.
pub const REQUEST_CLASSES: [&str; 7] = [
    "point",
    "window",
    "knn",
    "range",
    "join-probe",
    "insert",
    "delete",
];

/// Index into [`REQUEST_CLASSES`] for a queue-eligible request; `None` for
/// the control messages the reader answers inline.
fn class_index(req: &Request) -> Option<usize> {
    match req {
        Request::Point(_) => Some(0),
        Request::Window(_) => Some(1),
        Request::Knn(..) => Some(2),
        Request::Range(..) => Some(3),
        Request::JoinProbes(..) => Some(4),
        Request::Insert(_) => Some(5),
        Request::Delete(_) => Some(6),
        Request::Ping | Request::Shutdown | Request::Stats | Request::Events { .. } => None,
    }
}

/// Pre-registered telemetry handles for the serving hot paths.  Recording
/// through these is a handful of relaxed atomic ops per request; nothing
/// here takes a lock after registration, which is how the perf gate's p99
/// holds with telemetry always-on.
struct NetMetrics {
    /// `net.requests.<class>`: responses delivered successfully, per class.
    completed: [Counter; 7],
    /// `net.shed.<class>`: requests refused by admission control, per class.
    shed: [Counter; 7],
    /// `net.latency_us.<class>`: decode-to-delivery latency, microseconds.
    latency: [Histogram; 7],
    /// `net.bad_request`: frames that decoded but failed validation (plus
    /// undecodable payloads on an intact stream).
    bad_request: Counter,
    /// `net.queue_depth`: jobs waiting in the global batch queue.
    queue_depth: Gauge,
    /// `net.inflight`: admission tokens currently held.
    inflight: Gauge,
    /// `net.connections_open` / `net.connections_total`.
    connections_open: Gauge,
    connections_total: Counter,
    /// `net.outbox_depth`: per-connection ready-response backlog, sampled
    /// at every worker delivery.
    outbox_depth: Histogram,
    /// `query.*` / `engine.*`: per-query statistics aggregated from each
    /// batch's [`QueryContext`] — shard fan-out and visit/prune counters.
    blocks_touched: Counter,
    nodes_visited: Counter,
    candidates_scanned: Counter,
    shards_visited: Counter,
    shards_pruned: Counter,
}

impl NetMetrics {
    fn register(t: &Telemetry) -> Self {
        Self {
            completed: std::array::from_fn(|i| {
                t.metrics
                    .counter(&format!("net.requests.{}", REQUEST_CLASSES[i]))
            }),
            shed: std::array::from_fn(|i| {
                t.metrics
                    .counter(&format!("net.shed.{}", REQUEST_CLASSES[i]))
            }),
            latency: std::array::from_fn(|i| {
                t.metrics
                    .histogram(&format!("net.latency_us.{}", REQUEST_CLASSES[i]))
            }),
            bad_request: t.metrics.counter("net.bad_request"),
            queue_depth: t.metrics.gauge("net.queue_depth"),
            inflight: t.metrics.gauge("net.inflight"),
            connections_open: t.metrics.gauge("net.connections_open"),
            connections_total: t.metrics.counter("net.connections_total"),
            outbox_depth: t.metrics.histogram("net.outbox_depth"),
            blocks_touched: t.metrics.counter("query.blocks_touched"),
            nodes_visited: t.metrics.counter("query.nodes_visited"),
            candidates_scanned: t.metrics.counter("query.candidates_scanned"),
            shards_visited: t.metrics.counter("engine.shards_visited"),
            shards_pruned: t.metrics.counter("engine.shards_pruned"),
        }
    }
}

/// One admitted request travelling from a reader to a worker.
struct Job {
    req: Request,
    conn: Arc<ConnShared>,
    order: u64,
    /// Decode time, for the delivered-latency histogram.
    t0: Instant,
    /// Index into [`REQUEST_CLASSES`].
    class: usize,
}

/// Per-connection response routing: responses may be produced out of order
/// by concurrent workers, the writer emits them in request order.
struct Outbox {
    ready: BTreeMap<u64, Response>,
    /// Next order number the writer will emit.
    next_write: u64,
    /// Total order numbers issued by the reader.
    issued: u64,
    /// Reader finished (EOF, protocol error, or shutdown).
    closed: bool,
    /// Writer gave up (peer disconnected mid-response); responses are
    /// dropped from here on.
    dead: bool,
}

struct ConnShared {
    outbox: Mutex<Outbox>,
    cv: Condvar,
    slots: ConnSlots,
}

impl ConnShared {
    fn new() -> Self {
        Self {
            outbox: Mutex::new(Outbox {
                ready: BTreeMap::new(),
                next_write: 0,
                issued: 0,
                closed: false,
                dead: false,
            }),
            cv: Condvar::new(),
            slots: ConnSlots::default(),
        }
    }

    /// Queues `resp` as the response to order number `order` and wakes the
    /// writer.  Never blocks (workers must not stall on a slow peer): if
    /// the writer is dead the response is dropped.  Returns the ready
    /// backlog after the insert, for the outbox-depth telemetry.
    fn deliver(&self, order: u64, resp: Response) -> usize {
        let mut st = self.outbox.lock().unwrap();
        let depth = if !st.dead {
            st.ready.insert(order, resp);
            st.ready.len()
        } else {
            // The writer is gone; advance its cursor so bookkeeping stays
            // consistent for the drain accounting.
            if order == st.next_write {
                st.next_write += 1;
            }
            0
        };
        drop(st);
        self.cv.notify_all();
        depth
    }
}

struct Core {
    spatial: Arc<SpatialServer>,
    cfg: NetConfig,
    addr: SocketAddr,
    stop: AtomicBool,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    /// Two-window admission control, shared machinery with the router.
    admission: AdmissionGate,
    stats: StatCounters,
    next_conn_id: AtomicU64,
    /// Read-half handles of live connections, poked on shutdown so blocked
    /// readers wake immediately.
    conn_streams: Mutex<HashMap<u64, TcpStream>>,
    /// Reader thread handles, joined at shutdown (finished ones are swept
    /// opportunistically on accept).
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
    /// Shared telemetry sink (the spatial server's — one scrape covers
    /// both layers).
    telemetry: Arc<Telemetry>,
    /// Pre-registered handles into `telemetry`.
    metrics: NetMetrics,
    /// Journal timestamp (µs) of the last `OverloadShed` event, for
    /// rate-limiting: shed storms must not evict the compaction events a
    /// bounded journal retains (the exact shed totals are in counters).
    last_shed_event_us: AtomicU64,
    /// In-flight requests observed at the moment shutdown began — the
    /// "drained" count the shutdown summary reports.
    drained_at_shutdown: AtomicU64,
}

impl Core {
    fn try_admit(&self, conn: &ConnShared) -> bool {
        self.admission.try_admit(&conn.slots)
    }

    fn release(&self, conn: &ConnShared) {
        self.admission.release(&conn.slots);
    }

    /// Counts one shed and journals an `OverloadShed` event, rate-limited
    /// to one per second so a shed storm cannot evict rarer lifecycle
    /// events from the bounded journal.
    fn note_shed(&self, class: usize) {
        self.stats.shed.fetch_add(1, Ordering::Relaxed);
        self.metrics.shed[class].inc();
        let now_us = self.telemetry.journal.uptime_us();
        let last = self.last_shed_event_us.load(Ordering::Relaxed);
        if now_us.saturating_sub(last) >= 1_000_000
            && self
                .last_shed_event_us
                .compare_exchange(last, now_us, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            self.telemetry.journal.record(EventKind::OverloadShed {
                shed_total: self.stats.shed.load(Ordering::Relaxed),
            });
        }
    }

    /// Sets the stop flag and unblocks everything that might be waiting on
    /// a socket: acceptors get poke connections, connection readers get
    /// their read half shut down.  In-flight work keeps draining.
    fn begin_shutdown(&self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        let inflight = self.admission.inflight();
        self.drained_at_shutdown.store(inflight, Ordering::Relaxed);
        self.telemetry.journal.record(EventKind::Shutdown {
            uptime_us: self.telemetry.journal.uptime_us(),
            drained: inflight,
        });
        for _ in 0..self.cfg.acceptors {
            // A throwaway connection unblocks one blocked accept(); the
            // acceptor sees the stop flag and exits.
            let _ = TcpStream::connect(self.addr);
        }
        let streams = self.conn_streams.lock().unwrap();
        for stream in streams.values() {
            let _ = stream.shutdown(Shutdown::Read);
        }
        drop(streams);
        self.queue_cv.notify_all();
    }

    fn stats(&self) -> NetStats {
        NetStats {
            connections: self.stats.connections.load(Ordering::Relaxed),
            requests: self.stats.requests.load(Ordering::Relaxed),
            shed: self.stats.shed.load(Ordering::Relaxed),
            batches: self.stats.batches.load(Ordering::Relaxed),
            batched: self.stats.batched.load(Ordering::Relaxed),
        }
    }
}

/// Running server: owns every thread the listener spawned.
///
/// Dropping the handle shuts the server down and joins all threads; call
/// [`NetHandle::shutdown`] + [`NetHandle::join`] to do it explicitly.
pub struct NetHandle {
    core: Arc<Core>,
    acceptors: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl NetHandle {
    /// The bound address (resolves the actual port when served on port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.core.addr
    }

    /// Point-in-time serving counters.
    pub fn stats(&self) -> NetStats {
        self.core.stats()
    }

    /// Whether a shutdown (local or via a wire `Shutdown` request) has
    /// begun.
    pub fn is_stopped(&self) -> bool {
        self.core.stop.load(Ordering::Acquire)
    }

    /// Begins a graceful shutdown: stop accepting, refuse new requests,
    /// drain in-flight work.  Idempotent; returns without waiting — call
    /// [`NetHandle::join`] to wait for the drain.
    pub fn shutdown(&self) {
        self.core.begin_shutdown();
    }

    /// Waits for the full drain: acceptors, per-connection readers and
    /// writers (in-flight responses are flushed first), then workers.
    pub fn join(mut self) {
        self.join_inner();
    }

    fn join_inner(&mut self) {
        self.core.begin_shutdown();
        for h in self.acceptors.drain(..) {
            let _ = h.join();
        }
        // Connections registered concurrently with begin_shutdown's poke
        // sweep get their read half shut down here instead.
        let streams: Vec<TcpStream> = {
            let mut map = self.core.conn_streams.lock().unwrap();
            map.drain().map(|(_, s)| s).collect()
        };
        for s in &streams {
            let _ = s.shutdown(Shutdown::Read);
        }
        let conn_threads: Vec<JoinHandle<()>> =
            self.core.conn_threads.lock().unwrap().drain(..).collect();
        for h in conn_threads {
            let _ = h.join();
        }
        // No reader is left to enqueue jobs; workers drain what remains
        // and exit on the (stop, empty-queue) condition.
        self.core.queue_cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for NetHandle {
    fn drop(&mut self) {
        self.join_inner();
    }
}

/// Binds the unified configuration's address and starts serving `spatial`
/// over the wire protocol — the [`server::ServeConfig`] front door.  The
/// compaction subset of `cfg` is not consulted here: it belongs to whoever
/// constructed the [`SpatialServer`] (see `registry::serve_config`).
pub fn serve_config(
    spatial: Arc<SpatialServer>,
    cfg: &server::ServeConfig,
) -> Result<NetHandle, NetError> {
    serve(spatial, &cfg.bind_addr, NetConfig::from(cfg))
}

/// Binds `addr` (use port 0 for an ephemeral port) and starts serving
/// `spatial` over the wire protocol.  Returns once the listener is bound
/// and the pools are running.
///
/// Thin shim kept for existing call sites: prefer [`serve_config`] with a
/// [`server::ServeConfig`], which carries the bind address and admission
/// knobs in one builder.
pub fn serve(
    spatial: Arc<SpatialServer>,
    addr: &str,
    cfg: NetConfig,
) -> Result<NetHandle, NetError> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let telemetry = Arc::clone(spatial.telemetry());
    let metrics = NetMetrics::register(&telemetry);
    let core = Arc::new(Core {
        spatial,
        cfg: cfg.clone(),
        addr,
        stop: AtomicBool::new(false),
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        admission: AdmissionGate::new(
            cfg.global_inflight,
            cfg.per_conn_inflight,
            metrics.inflight.clone(),
        ),
        stats: StatCounters::default(),
        next_conn_id: AtomicU64::new(0),
        conn_streams: Mutex::new(HashMap::new()),
        conn_threads: Mutex::new(Vec::new()),
        telemetry,
        metrics,
        last_shed_event_us: AtomicU64::new(0),
        drained_at_shutdown: AtomicU64::new(0),
    });
    let acceptors = (0..cfg.acceptors)
        .map(|_| {
            let core = Arc::clone(&core);
            let listener = listener.try_clone().map_err(NetError::Io)?;
            Ok(std::thread::spawn(move || acceptor_loop(&core, &listener)))
        })
        .collect::<Result<Vec<_>, NetError>>()?;
    let workers = (0..cfg.workers)
        .map(|_| {
            let core = Arc::clone(&core);
            std::thread::spawn(move || worker_loop(&core))
        })
        .collect();
    Ok(NetHandle {
        core,
        acceptors,
        workers,
    })
}

fn acceptor_loop(core: &Arc<Core>, listener: &TcpListener) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if core.stop.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
        };
        if core.stop.load(Ordering::Acquire) {
            // Either the shutdown poke or a client racing the drain;
            // refusing new connections is the drain contract.
            return;
        }
        core.stats.connections.fetch_add(1, Ordering::Relaxed);
        core.metrics.connections_total.inc();
        let _ = stream.set_nodelay(true);
        // A peer that stops reading must not pin a writer thread forever
        // (it would stall the drain at shutdown); a stuck send errors out
        // and the connection is dropped.
        let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
        let id = core.next_conn_id.fetch_add(1, Ordering::Relaxed);
        let (read_poke, write_half) = match (stream.try_clone(), stream.try_clone()) {
            (Ok(a), Ok(b)) => (a, b),
            _ => continue,
        };
        core.conn_streams.lock().unwrap().insert(id, read_poke);
        let handle = {
            let core = Arc::clone(core);
            std::thread::spawn(move || connection_loop(&core, id, stream, write_half))
        };
        let mut threads = core.conn_threads.lock().unwrap();
        threads.retain(|h| !h.is_finished());
        threads.push(handle);
        drop(threads);
        // A connection accepted in the race window right before the stop
        // flag was set would miss the poke sweep; re-check so its read
        // half is shut down too.
        if core.stop.load(Ordering::Acquire) {
            if let Some(s) = core.conn_streams.lock().unwrap().get(&id) {
                let _ = s.shutdown(Shutdown::Read);
            }
            return;
        }
    }
}

/// Semantic validation of an admitted request; framing-level corruption is
/// already excluded by the frame CRC and the decoder.
fn validate(req: &Request) -> Result<(), String> {
    match req {
        Request::Knn(_, k) if *k > MAX_KNN_K => {
            Err(format!("k {k} exceeds the cap of {MAX_KNN_K}"))
        }
        Request::Range(_, radius) | Request::JoinProbes(_, radius)
            if !radius.is_finite() || *radius < 0.0 =>
        {
            Err(format!(
                "radius {radius} is not a finite non-negative value"
            ))
        }
        _ => Ok(()),
    }
}

/// Reader half of one connection: decode, admit (or shed), enqueue; spawns
/// and finally joins the connection's writer thread.
fn connection_loop(core: &Arc<Core>, id: u64, mut stream: TcpStream, write_half: TcpStream) {
    let conn = Arc::new(ConnShared::new());
    core.metrics.connections_open.add(1);
    core.telemetry
        .journal
        .record(EventKind::ConnOpen { conn: id });
    let writer = {
        let conn = Arc::clone(&conn);
        std::thread::spawn(move || writer_loop(&conn, write_half))
    };
    let mut order: u64 = 0;
    loop {
        let payload = match wire::read_frame(&mut stream) {
            Ok(Some(p)) => p,
            // Clean EOF between frames (client done, or our read half was
            // shut down by the drain) — stop reading.
            Ok(None) => break,
            // Framing broken mid-stream (client disconnected mid-request,
            // or garbage): resynchronisation is impossible, drop the
            // connection.  In-flight responses still flush below.
            Err(_) => break,
        };
        let t0 = Instant::now();
        core.stats.requests.fetch_add(1, Ordering::Relaxed);
        // Backpressure for reader-issued responses (errors, pongs): a peer
        // that sends requests but never reads responses would otherwise
        // grow the outbox unboundedly.  Admitted jobs are already bounded
        // by the admission window.
        let outbox_cap = core.cfg.per_conn_inflight + 64;
        let issue = |resp: Response, conn: &Arc<ConnShared>, order: &mut u64| {
            let mut st = conn.outbox.lock().unwrap();
            while st.ready.len() >= outbox_cap && !st.dead {
                st = conn.cv.wait(st).unwrap();
            }
            st.issued += 1;
            drop(st);
            conn.deliver(*order, resp);
            *order += 1;
        };
        let req = match Request::decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                // The frame passed its CRC, so framing is intact and the
                // stream can continue; only this message is refused.
                core.metrics.bad_request.inc();
                issue(
                    Response::Error {
                        code: ErrorCode::BadRequest,
                        message: e.to_string(),
                    },
                    &conn,
                    &mut order,
                );
                continue;
            }
        };
        match req {
            Request::Ping => {
                let seq = core.spatial.snapshot().seq();
                issue(Response::Pong { seq }, &conn, &mut order);
            }
            // Telemetry scrapes are answered inline like Ping and bypass
            // admission control: an overloaded (or draining) server must
            // still be observable — that is the point of the telemetry.
            Request::Stats => {
                let seq = core.spatial.snapshot().seq();
                issue(
                    Response::Stats {
                        seq,
                        metrics: core.telemetry.metrics.snapshot(),
                    },
                    &conn,
                    &mut order,
                );
            }
            Request::Events { since } => {
                let seq = core.spatial.snapshot().seq();
                issue(
                    Response::Events {
                        seq,
                        events: core.telemetry.journal.since(since),
                    },
                    &conn,
                    &mut order,
                );
            }
            Request::Shutdown => {
                // Flip the stop flag BEFORE acknowledging: a client that
                // received the ack must observe the server as stopped.
                // The writer thread still flushes the ack — shutdown only
                // closes the read halves.
                core.begin_shutdown();
                let seq = core.spatial.snapshot().seq();
                issue(Response::Pong { seq }, &conn, &mut order);
            }
            req => {
                if core.stop.load(Ordering::Acquire) {
                    issue(
                        Response::Error {
                            code: ErrorCode::ShuttingDown,
                            message: "server is draining".into(),
                        },
                        &conn,
                        &mut order,
                    );
                } else if let Err(msg) = validate(&req) {
                    core.metrics.bad_request.inc();
                    issue(
                        Response::Error {
                            code: ErrorCode::BadRequest,
                            message: msg,
                        },
                        &conn,
                        &mut order,
                    );
                } else if !core.try_admit(&conn) {
                    let class = class_index(&req).expect("queue-eligible request");
                    core.note_shed(class);
                    issue(
                        Response::Error {
                            code: ErrorCode::Overload,
                            message: "in-flight queue full".into(),
                        },
                        &conn,
                        &mut order,
                    );
                } else {
                    let class = class_index(&req).expect("queue-eligible request");
                    let mut st = conn.outbox.lock().unwrap();
                    st.issued += 1;
                    drop(st);
                    let mut q = core.queue.lock().unwrap();
                    q.push_back(Job {
                        req,
                        conn: Arc::clone(&conn),
                        order,
                        t0,
                        class,
                    });
                    core.metrics.queue_depth.set(q.len() as i64);
                    drop(q);
                    core.queue_cv.notify_one();
                    order += 1;
                }
            }
        }
    }
    // Drain contract: mark the outbox closed so the writer exits once
    // every issued response has been flushed, then wait for it.
    let mut st = conn.outbox.lock().unwrap();
    st.closed = true;
    drop(st);
    conn.cv.notify_all();
    let _ = writer.join();
    core.conn_streams.lock().unwrap().remove(&id);
    core.metrics.connections_open.add(-1);
    core.telemetry
        .journal
        .record(EventKind::ConnClose { conn: id });
}

/// Writer half of one connection: emits responses strictly in request
/// order, exits when the reader has closed and everything issued has been
/// flushed (or the peer is gone).
fn writer_loop(conn: &Arc<ConnShared>, mut stream: TcpStream) {
    loop {
        let resp = {
            let mut st = conn.outbox.lock().unwrap();
            loop {
                let next = st.next_write;
                if let Some(r) = st.ready.remove(&next) {
                    st.next_write += 1;
                    break r;
                }
                if st.dead || (st.closed && st.next_write >= st.issued) {
                    return;
                }
                st = conn.cv.wait(st).unwrap();
            }
        };
        // A pop freed outbox space; wake any reader blocked on the
        // backpressure cap.
        conn.cv.notify_all();
        if wire::write_frame(&mut stream, &resp.encode()).is_err() {
            // Peer disconnected mid-response; drop the rest.
            let mut st = conn.outbox.lock().unwrap();
            st.dead = true;
            st.ready.clear();
            drop(st);
            conn.cv.notify_all();
            return;
        }
    }
}

fn worker_loop(core: &Arc<Core>) {
    loop {
        let batch: Vec<Job> = {
            let mut q = core.queue.lock().unwrap();
            loop {
                if !q.is_empty() {
                    let n = q.len().min(core.cfg.batch_max);
                    let batch: Vec<Job> = q.drain(..n).collect();
                    core.metrics.queue_depth.set(q.len() as i64);
                    break batch;
                }
                if core.stop.load(Ordering::Acquire) {
                    return;
                }
                let (guard, _) = core
                    .queue_cv
                    .wait_timeout(q, Duration::from_millis(50))
                    .unwrap();
                q = guard;
            }
        };
        execute_batch(core, &batch);
    }
}

/// Runs one micro-batch: one pinned snapshot, reads grouped per class
/// through the snapshot's batch entry points, writes applied in queue
/// order through the delta overlay.
fn execute_batch(core: &Arc<Core>, jobs: &[Job]) {
    core.stats.batches.fetch_add(1, Ordering::Relaxed);
    core.stats
        .batched
        .fetch_add(jobs.len() as u64, Ordering::Relaxed);
    let snap = core.spatial.snapshot();
    let seq = snap.seq();
    let mut cx = QueryContext::new();
    let mut responses: Vec<Option<Response>> = (0..jobs.len()).map(|_| None).collect();
    let mut points: Vec<(usize, Point)> = Vec::new();
    let mut windows: Vec<(usize, geom::Rect)> = Vec::new();
    let mut knns: BTreeMap<u32, Vec<(usize, Point)>> = BTreeMap::new();
    let mut ranges: BTreeMap<u64, Vec<(usize, Point)>> = BTreeMap::new();
    for (i, job) in jobs.iter().enumerate() {
        match &job.req {
            Request::Point(p) => points.push((i, *p)),
            Request::Window(w) => windows.push((i, *w)),
            Request::Knn(p, k) => knns.entry(*k).or_default().push((i, *p)),
            Request::Range(p, radius) => ranges.entry(radius.to_bits()).or_default().push((i, *p)),
            Request::JoinProbes(probes, radius) => {
                let mut pairs = Vec::new();
                snap.distance_join_probes(probes, *radius, &mut cx, &mut |a, b| {
                    pairs.push((*a, *b));
                });
                responses[i] = Some(Response::Pairs { seq, pairs });
            }
            Request::Insert(p) => {
                let wseq = core.spatial.insert(*p);
                responses[i] = Some(Response::Written {
                    seq: wseq,
                    removed: false,
                });
            }
            Request::Delete(p) => {
                let (removed, wseq) = core.spatial.delete(p);
                responses[i] = Some(Response::Written { seq: wseq, removed });
            }
            // Handled inline by the reader; never enqueued.
            Request::Ping | Request::Shutdown => {
                responses[i] = Some(Response::Pong { seq });
            }
            Request::Stats | Request::Events { .. } => {
                responses[i] = Some(Response::Error {
                    code: ErrorCode::BadRequest,
                    message: "telemetry requests are answered inline".into(),
                });
            }
        }
    }
    let qs: Vec<Point> = points.iter().map(|(_, p)| *p).collect();
    for ((i, _), hit) in points.iter().zip(snap.point_queries(&qs, &mut cx)) {
        responses[*i] = Some(Response::Point { seq, hit });
    }
    let ws: Vec<geom::Rect> = windows.iter().map(|(_, w)| *w).collect();
    for ((i, _), result) in windows.iter().zip(snap.window_queries(&ws, &mut cx)) {
        responses[*i] = Some(Response::Points {
            seq,
            points: result,
        });
    }
    for (k, group) in &knns {
        let qs: Vec<Point> = group.iter().map(|(_, p)| *p).collect();
        for ((i, _), result) in group
            .iter()
            .zip(snap.knn_queries(&qs, *k as usize, &mut cx))
        {
            responses[*i] = Some(Response::Knn {
                seq,
                points: result,
            });
        }
    }
    for (radius_bits, group) in &ranges {
        let radius = f64::from_bits(*radius_bits);
        let qs: Vec<Point> = group.iter().map(|(_, p)| *p).collect();
        for ((i, _), result) in group.iter().zip(snap.range_queries(&qs, radius, &mut cx)) {
            responses[*i] = Some(Response::Points {
                seq,
                points: result,
            });
        }
    }
    // Aggregate the batch's per-query statistics into the live counters:
    // block/node/candidate work from every index layer, shard fan-out and
    // pruning from the engine's sharded executor.
    let qstats = cx.take_stats();
    core.metrics.blocks_touched.add(qstats.blocks_touched);
    core.metrics.nodes_visited.add(qstats.nodes_visited);
    core.metrics
        .candidates_scanned
        .add(qstats.candidates_scanned);
    core.metrics.shards_visited.add(qstats.shards_visited);
    core.metrics.shards_pruned.add(qstats.shards_pruned);
    for (job, resp) in jobs.iter().zip(responses) {
        let resp = resp.unwrap_or(Response::Error {
            code: ErrorCode::BadRequest,
            message: "request class not answerable".into(),
        });
        // Count before delivering: a closed-loop client that sees this
        // response and immediately scrapes STATS must find it reflected.
        core.metrics.completed[job.class].inc();
        core.metrics.latency[job.class].record(job.t0.elapsed().as_micros() as u64);
        let depth = job.conn.deliver(job.order, resp);
        core.metrics.outbox_depth.record(depth as u64);
        core.release(&job.conn);
    }
}
