//! A remote index: the [`common::SpatialIndex`] query surface over one
//! wire connection.
//!
//! [`RemoteIndex`] wraps a [`NetClient`] so conformance and oracle helpers
//! (e.g. `bench::live`) drive a networked server — a single-process
//! front-end, a shard server, or the distributed router — through exactly
//! the same code path as a local index.  Every data-bearing response's
//! observed write sequence is retained ([`RemoteIndex::last_seq`]), which
//! is what a replay oracle orders observations by.
//!
//! The trait has no error channel, so network failures **panic** with the
//! failing operation: this adapter is for tests, benchmarks, and
//! conformance drivers, where a broken connection is a failed run, not a
//! condition to recover from.  Production callers keep using [`NetClient`]
//! directly.

use crate::NetClient;
use common::{QueryContext, SpatialIndex};
use geom::{Point, Rect};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// A [`SpatialIndex`] whose data lives behind a wire connection.
///
/// Queries take `&self` through a mutex around the underlying blocking
/// client (one request in flight at a time — the closed-loop shape);
/// updates take `&mut self` like every other index.
pub struct RemoteIndex {
    client: Mutex<NetClient>,
    last_seq: AtomicU64,
}

impl RemoteIndex {
    /// Wraps an already-connected client.
    pub fn new(client: NetClient) -> Self {
        Self {
            client: Mutex::new(client),
            last_seq: AtomicU64::new(0),
        }
    }

    /// Connects to `addr`.
    pub fn connect(addr: &str) -> Result<Self, crate::NetError> {
        NetClient::connect(addr).map(Self::new)
    }

    /// Connects to `addr`, retrying until `deadline` elapses (for racing a
    /// server that is still binding its listener).
    pub fn connect_retry(addr: &str, deadline: Duration) -> Result<Self, crate::NetError> {
        NetClient::connect_retry(addr, deadline).map(Self::new)
    }

    /// The write sequence number observed by the most recent response —
    /// what a replay oracle orders this connection's observations by.
    pub fn last_seq(&self) -> u64 {
        self.last_seq.load(Ordering::Acquire)
    }

    fn call<T>(
        &self,
        what: &str,
        f: impl FnOnce(&mut NetClient) -> Result<(u64, T), crate::NetError>,
    ) -> T {
        let mut client = self.client.lock().expect("remote client lock poisoned");
        let (seq, out) = f(&mut client)
            .unwrap_or_else(|e| panic!("remote index: {what} failed over the wire: {e}"));
        self.last_seq.store(seq, Ordering::Release);
        out
    }
}

impl SpatialIndex for RemoteIndex {
    fn name(&self) -> &'static str {
        "Remote"
    }

    /// Counts the points inside the unit square — the same full-space scan
    /// the snapshot warm-start recovery uses, so it is exact for every
    /// exact family over the standard `[0,1]²` datasets.  One wire round
    /// trip per call; cache it if called in a loop.
    fn len(&self) -> usize {
        let mut n = 0usize;
        let mut cx = QueryContext::new();
        self.window_query_visit(&Rect::unit(), &mut cx, &mut |_| n += 1);
        n
    }

    fn point_query(&self, q: &Point, _cx: &mut QueryContext) -> Option<Point> {
        self.call("point query", |c| c.point(q))
    }

    fn window_query_visit(
        &self,
        window: &Rect,
        _cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point),
    ) {
        for p in self.call("window query", |c| c.window(window)) {
            visit(&p);
        }
    }

    fn knn_query_visit(
        &self,
        q: &Point,
        k: usize,
        _cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point),
    ) {
        let k = u32::try_from(k).unwrap_or(u32::MAX);
        for p in self.call("knn query", |c| c.knn(q, k)) {
            visit(&p);
        }
    }

    fn range_query_visit(
        &self,
        center: &Point,
        radius: f64,
        _cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point),
    ) {
        if !radius.is_finite() || radius < 0.0 {
            return;
        }
        for p in self.call("range query", |c| c.range(center, radius)) {
            visit(&p);
        }
    }

    fn distance_join_probes(
        &self,
        probes: &[Point],
        radius: f64,
        _cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point, &Point),
    ) {
        if !radius.is_finite() || radius < 0.0 || probes.is_empty() {
            return;
        }
        for (m, q) in self.call("join probes", |c| c.join_probes(probes, radius)) {
            visit(&m, &q);
        }
    }

    fn for_each_point(&self, visit: &mut dyn FnMut(&Point)) {
        let mut cx = QueryContext::new();
        self.window_query_visit(&Rect::unit(), &mut cx, visit);
    }

    fn insert(&mut self, p: Point) {
        self.call("insert", |c| c.insert(&p).map(|seq| (seq, ())));
    }

    fn delete(&mut self, p: &Point) -> bool {
        self.call("delete", |c| {
            c.delete(p).map(|(removed, seq)| (seq, removed))
        })
    }

    /// Unknown for a remote index (the bytes live in another process).
    fn size_bytes(&self) -> usize {
        0
    }

    /// The wire hop itself — the structure behind it is opaque.
    fn height(&self) -> usize {
        1
    }
}
