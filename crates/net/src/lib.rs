//! Network serving front-end for the learned-index serving engine.
//!
//! Everything is hand-rolled over `std::net` (the offline vendor policy
//! rules out tokio/hyper/serde): a length-prefixed binary protocol whose
//! framing mirrors the `persist` snapshot conventions ([`wire`]), an
//! admission-controlled TCP server that coalesces concurrently-arriving
//! requests into snapshot-sharing micro-batches ([`serve`]), and a blocking
//! [`NetClient`].
//!
//! The serving contract is the same one the in-process engine makes:
//! every data-bearing response carries the write sequence number
//! ([`server::Snapshot::seq`]) its snapshot observed, so a client can
//! replay the write stream into a scan oracle and verify every networked
//! answer — the `serve-live` verification pattern, extended across the
//! wire.
//!
//! ```
//! use common::SpatialIndex;
//! use geom::Point;
//! use server::{ServerConfig, SpatialServer};
//! use std::sync::Arc;
//!
//! // An engine serving three points, fronted by a TCP listener on an
//! // ephemeral port.
//! let points = vec![
//!     Point::with_id(0.1, 0.1, 1),
//!     Point::with_id(0.5, 0.5, 2),
//!     Point::with_id(0.9, 0.9, 3),
//! ];
//! let rebuild: server::RebuildFn =
//!     Box::new(|pts| Box::new(common::brute_force::ScanIndex::new(pts.to_vec())));
//! let engine = Arc::new(SpatialServer::new(points, rebuild, ServerConfig::default()));
//! let handle = net::serve(engine, "127.0.0.1:0", net::NetConfig::default()).unwrap();
//!
//! let mut client = net::NetClient::connect(&handle.local_addr().to_string()).unwrap();
//! let (seq, hit) = client.point(&Point::with_id(0.5, 0.5, 2)).unwrap();
//! assert_eq!(seq, 0);
//! assert_eq!(hit.map(|p| p.id), Some(2));
//!
//! handle.shutdown();
//! handle.join();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub mod admission;
pub mod client;
pub mod remote;
pub mod server_loop;
pub mod wire;

pub use admission::{AdmissionGate, ConnSlots};
pub use client::NetClient;
pub use remote::RemoteIndex;
pub use server_loop::{serve, serve_config, NetConfig, NetHandle, NetStats, REQUEST_CLASSES};
pub use wire::{ErrorCode, Request, Response};

/// Everything that can go wrong on the wire, mirroring the
/// `persist::PersistError` taxonomy so operators see one vocabulary for
/// both on-disk and on-wire corruption.
#[derive(Debug)]
pub enum NetError {
    /// Underlying socket error.
    Io(std::io::Error),
    /// The frame did not start with the `RNET` magic.
    BadMagic,
    /// The frame's protocol version is not understood.
    UnsupportedVersion(u16),
    /// The frame's length prefix exceeds [`wire::MAX_FRAME_LEN`]; rejected
    /// before any allocation.
    FrameTooLarge(u32),
    /// The stream ended mid-frame (or a payload field ran past the frame).
    Truncated,
    /// The payload CRC did not match.
    ChecksumMismatch,
    /// Structurally invalid message content (unknown tag, bogus element
    /// count, trailing bytes, ...).
    Corrupt(String),
    /// The peer closed the connection where a response was expected.
    Closed,
    /// The server shed the request under admission control.
    Overload,
    /// The server is draining and refused the request.
    ShuttingDown,
    /// The server refused the request as semantically invalid.
    Remote(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::BadMagic => write!(f, "bad frame magic (not an RNET frame)"),
            NetError::UnsupportedVersion(v) => {
                write!(f, "unsupported protocol version {v}")
            }
            NetError::FrameTooLarge(n) => {
                write!(
                    f,
                    "frame length {n} exceeds the {} byte cap",
                    wire::MAX_FRAME_LEN
                )
            }
            NetError::Truncated => write!(f, "stream truncated mid-frame"),
            NetError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            NetError::Corrupt(msg) => write!(f, "corrupt message: {msg}"),
            NetError::Closed => write!(f, "connection closed by peer"),
            NetError::Overload => write!(f, "server overloaded (request shed)"),
            NetError::ShuttingDown => write!(f, "server shutting down"),
            NetError::Remote(msg) => write!(f, "server refused request: {msg}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unified_serve_config_defaults_match_net_defaults() {
        // `server::ServeConfig` restates the network defaults (the crate
        // dependency points server → net-ward, not the other way); this
        // pins the two against drifting apart.
        let net = NetConfig::default();
        let unified = NetConfig::from(&server::ServeConfig::default());
        assert_eq!(net.acceptors, unified.acceptors);
        assert_eq!(net.workers, unified.workers);
        assert_eq!(net.batch_max, unified.batch_max);
        assert_eq!(net.per_conn_inflight, unified.per_conn_inflight);
        assert_eq!(net.global_inflight, unified.global_inflight);
    }

    #[test]
    fn errors_format_for_operators() {
        assert!(NetError::FrameTooLarge(123).to_string().contains("123"));
        assert!(NetError::UnsupportedVersion(9).to_string().contains('9'));
        assert!(NetError::Corrupt("tag 0xff".into())
            .to_string()
            .contains("tag 0xff"));
    }
}
