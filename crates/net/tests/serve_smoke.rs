//! Behavioural tests for the serving loop: answers match the in-process
//! engine byte for byte, admission control sheds with a typed OVERLOAD,
//! shutdown drains without leaking threads, and garbage on the socket
//! never takes the server down.

use common::brute_force::ScanIndex;
use common::QueryContext;
use geom::{Point, Rect};
use net::{NetClient, NetConfig, NetError};
use server::{RebuildFn, ServerConfig, SpatialServer};
use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

fn test_points(n: usize) -> Vec<Point> {
    // Deterministic, irregular, collision-free.
    (0..n)
        .map(|i| {
            let x = (i as f64 * 0.37911) % 1.0;
            let y = (i as f64 * 0.61803) % 1.0;
            Point::with_id(x, y, i as u64 + 1)
        })
        .collect()
}

fn spawn_server(points: Vec<Point>, cfg: NetConfig) -> (Arc<SpatialServer>, net::NetHandle) {
    let rebuild: RebuildFn = Box::new(|pts| Box::new(ScanIndex::new(pts.to_vec())));
    let engine = Arc::new(SpatialServer::new(points, rebuild, ServerConfig::default()));
    let handle = net::serve(Arc::clone(&engine), "127.0.0.1:0", cfg).unwrap();
    (engine, handle)
}

#[test]
fn networked_answers_are_byte_identical_to_in_process() {
    let points = test_points(500);
    let (engine, handle) = spawn_server(points.clone(), NetConfig::default());
    let addr = handle.local_addr().to_string();
    let mut client = NetClient::connect(&addr).unwrap();
    let mut cx = QueryContext::new();
    let snap = engine.snapshot();

    let q = points[123];
    let (_, hit) = client.point(&q).unwrap();
    assert_eq!(hit, snap.point_query(&q, &mut cx));

    let w = Rect::new(0.2, 0.2, 0.6, 0.6);
    let (_, got) = client.window(&w).unwrap();
    assert_eq!(got, snap.window_query(&w, &mut cx));

    let (_, got) = client.knn(&q, 7).unwrap();
    assert_eq!(got, snap.knn_query(&q, 7, &mut cx));

    let (_, got) = client.range(&q, 0.1).unwrap();
    assert_eq!(got, snap.range_query(&q, 0.1, &mut cx));

    let probes = &points[..10];
    let (_, got) = client.join_probes(probes, 0.05).unwrap();
    let mut expect = Vec::new();
    snap.distance_join_probes(probes, 0.05, &mut cx, &mut |a, b| expect.push((*a, *b)));
    assert_eq!(got, expect);

    handle.shutdown();
    handle.join();
}

#[test]
fn writes_route_through_the_delta_overlay() {
    let (engine, handle) = spawn_server(test_points(100), NetConfig::default());
    let addr = handle.local_addr().to_string();
    let mut client = NetClient::connect(&addr).unwrap();

    let fresh = Point::with_id(0.111, 0.222, 9_000_001);
    let seq1 = client.insert(&fresh).unwrap();
    assert_eq!(seq1, 1);
    let (_, hit) = client.point(&fresh).unwrap();
    assert_eq!(hit.map(|p| p.id), Some(9_000_001));

    let (removed, seq2) = client.delete(&fresh).unwrap();
    assert!(removed);
    assert_eq!(seq2, 2);
    let (_, hit) = client.point(&fresh).unwrap();
    assert_eq!(hit, None);
    assert_eq!(engine.stats().seq, 2);

    handle.shutdown();
    handle.join();
}

#[test]
fn zero_admission_window_sheds_with_typed_overload() {
    let cfg = NetConfig::default().with_global_inflight(0);
    let (_engine, handle) = spawn_server(test_points(50), cfg);
    let mut client = NetClient::connect(&handle.local_addr().to_string()).unwrap();
    // Control messages bypass admission; queries are shed.
    client.ping().unwrap();
    match client.point(&Point::with_id(0.5, 0.5, 1)) {
        Err(NetError::Overload) => {}
        other => panic!("expected Overload, got {other:?}"),
    }
    assert!(handle.stats().shed >= 1);
    // The connection survives the shed: control traffic still works.
    client.ping().unwrap();
    handle.shutdown();
    handle.join();
}

#[test]
fn wire_shutdown_drains_and_refuses_new_requests() {
    let (_engine, handle) = spawn_server(test_points(50), NetConfig::default());
    let addr = handle.local_addr().to_string();
    let mut client = NetClient::connect(&addr).unwrap();
    client.shutdown_server().unwrap();
    assert!(handle.is_stopped());
    // New connections are refused (accept loop exited) and the drain
    // completes without leaking threads.
    handle.join();
    assert!(
        NetClient::connect(&addr).is_err() || {
            // A connect may be accepted by the OS backlog after the listener
            // closed on some platforms; a request on it must then fail.
            let mut c = NetClient::connect(&addr).unwrap();
            c.ping().is_err()
        }
    );
}

#[test]
fn garbage_and_disconnects_do_not_take_the_server_down() {
    let (_engine, handle) = spawn_server(test_points(50), NetConfig::default());
    let addr = handle.local_addr().to_string();

    // Garbage bytes: the connection is dropped, the server lives.
    let mut garbage = std::net::TcpStream::connect(&addr).unwrap();
    garbage.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    drop(garbage);

    // A partial frame followed by a disconnect mid-request.
    let payload = net::Request::Ping.encode();
    let frame = net::wire::frame_bytes(&payload);
    let mut partial = std::net::TcpStream::connect(&addr).unwrap();
    partial.write_all(&frame[..frame.len() / 2]).unwrap();
    drop(partial);

    // An oversized length prefix must be rejected without allocation.
    let mut oversized = std::net::TcpStream::connect(&addr).unwrap();
    let mut header = Vec::new();
    header.extend_from_slice(&net::wire::MAGIC);
    header.extend_from_slice(&net::wire::PROTOCOL_VERSION.to_le_bytes());
    header.extend_from_slice(&u32::MAX.to_le_bytes());
    oversized.write_all(&header).unwrap();
    drop(oversized);

    // The server still answers a well-formed client.
    let mut client = NetClient::connect_retry(&addr, Duration::from_secs(5)).unwrap();
    client.ping().unwrap();
    let (_, hit) = client.point(&test_points(50)[10]).unwrap();
    assert!(hit.is_some());

    handle.shutdown();
    handle.join();
}

#[test]
fn live_stats_and_events_reconcile_with_traffic() {
    let points = test_points(300);
    let (_engine, handle) = spawn_server(points.clone(), NetConfig::default());
    let addr = handle.local_addr().to_string();
    let mut client = NetClient::connect(&addr).unwrap();

    // Generate a known mix of traffic: 5 points, 2 windows, 1 knn, 3 inserts.
    for i in 0..5 {
        client.point(&points[i * 7]).unwrap();
    }
    for _ in 0..2 {
        client.window(&Rect::new(0.1, 0.1, 0.4, 0.4)).unwrap();
    }
    client.knn(&points[9], 3).unwrap();
    for i in 0..3 {
        client
            .insert(&Point::with_id(0.01 * i as f64, 0.02, 8_000_000 + i as u64))
            .unwrap();
    }

    // The scrape itself bypasses admission control and reflects every
    // request already delivered (the client is closed-loop, so all prior
    // responses have arrived by the time Stats is sent).
    let (seq, metrics) = client.stats().unwrap();
    assert_eq!(seq, 3, "three writes were applied");
    assert_eq!(metrics.counter("net.requests.point"), Some(5));
    assert_eq!(metrics.counter("net.requests.window"), Some(2));
    assert_eq!(metrics.counter("net.requests.knn"), Some(1));
    assert_eq!(metrics.counter("net.requests.insert"), Some(3));
    // All classes are pre-registered so scrapers see a stable name set.
    assert_eq!(metrics.counter("net.requests.delete"), Some(0));
    assert_eq!(metrics.gauge("server.delta_ops"), Some(3));
    assert_eq!(metrics.gauge("server.seq"), Some(3));
    assert_eq!(metrics.gauge("net.connections_open"), Some(1));
    let lat = metrics
        .histogram("net.latency_us.point")
        .expect("point latency histogram present");
    assert_eq!(lat.count, 5);

    // The journal holds the lifecycle trace: a server-start and this
    // connection's open event.
    let (_, events) = client.events(0).unwrap();
    let names: Vec<&str> = events.events.iter().map(|e| e.kind.name()).collect();
    assert!(names.contains(&"server-start"), "events: {names:?}");
    assert!(names.contains(&"conn-open"), "events: {names:?}");
    // Seqs are strictly ascending, and `since` filters.
    let last = events.events.last().unwrap().seq;
    let (_, tail) = client.events(last).unwrap();
    assert!(tail.events.iter().all(|e| e.seq > last));

    handle.shutdown();
    handle.join();
}

#[test]
fn concurrent_clients_coalesce_into_micro_batches() {
    let points = test_points(2000);
    let cfg = NetConfig::default().with_workers(2).with_batch_max(16);
    let (_engine, handle) = spawn_server(points.clone(), cfg);
    let addr = handle.local_addr().to_string();
    let threads = 8;
    let per_thread = 50;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let addr = addr.clone();
            let points = &points;
            scope.spawn(move || {
                let mut client = NetClient::connect(&addr).unwrap();
                for i in 0..per_thread {
                    let q = points[(t * per_thread + i) % points.len()];
                    let (_, hit) = client.point(&q).unwrap();
                    assert_eq!(hit.map(|p| p.id), Some(q.id));
                }
            });
        }
    });
    let stats = handle.stats();
    assert_eq!(stats.requests, (threads * per_thread) as u64);
    assert_eq!(stats.batched, stats.requests);
    assert!(stats.batches <= stats.batched);
    handle.shutdown();
    handle.join();
}
