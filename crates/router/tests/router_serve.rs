//! In-process distributed serving tests: each shard of a sharded snapshot
//! is served by a real `net` serving loop over the shard's extracted
//! snapshot image, and the router plans over them through real TCP
//! connections.  The reference for every answer is the single-process
//! sharded index loaded from the same snapshot.
//!
//! (The cross-*process* suite — subprocess shard servers, SIGKILL chaos —
//! lives in the workspace-level `tests/sharded_determinism.rs`.)

use common::{QueryContext, SpatialIndex};
use datagen::{generate, queries, Distribution};
use geom::Point;
use net::{NetClient, RemoteIndex};
use registry::{BaseKind, IndexConfig};
use server::{ServeConfig, ServerConfig, SpatialServer};
use std::path::PathBuf;
use std::sync::Arc;

const SHARDS: usize = 3;

fn cfg() -> IndexConfig {
    IndexConfig::fast().with_shards(SHARDS)
}

fn snapshot_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("router-{tag}-{}.snap", std::process::id()))
}

/// An in-process cluster: the router plus its shard servers.  Field order
/// matters for drop: the router goes first (its drop propagates shutdown
/// upstream while the shard servers are still alive), then the shard
/// serving loops, then the spatial servers behind them.
struct Cluster {
    router: Option<router::RouterHandle>,
    shard_handles: Vec<net::NetHandle>,
    _servers: Vec<Arc<SpatialServer>>,
}

impl Cluster {
    fn router_addr(&self) -> String {
        self.router.as_ref().unwrap().local_addr().to_string()
    }
}

/// Builds a sharded-grid snapshot over `data`, serves every shard over TCP
/// (`replicas_shard0` copies of shard 0, one of each other shard), starts
/// a router over the manifest, and loads the single-process reference
/// index from the same snapshot.
fn spawn_cluster(
    data: &[Point],
    replicas_shard0: usize,
    tag: &str,
) -> (Cluster, Box<dyn SpatialIndex>) {
    let path = snapshot_path(tag);
    let index = registry::build_index(BaseKind::Grid.sharded(), data, &cfg());
    registry::save_index(index.as_ref(), &path).expect("save sharded snapshot");
    let (_, manifest) = registry::load_shard_manifest(&path).expect("read manifest");
    let mut shard_handles = Vec::new();
    let mut servers = Vec::new();
    let mut addrs = Vec::new();
    for shard in 0..manifest.shard_count() {
        let bytes = registry::load_shard_snapshot(&path, shard).expect("extract shard");
        let copies = if shard == 0 { replicas_shard0 } else { 1 };
        let mut shard_addrs = Vec::new();
        for _ in 0..copies {
            let server = Arc::new(
                registry::serve_snapshot_bytes(&bytes, &cfg(), ServerConfig::default())
                    .expect("warm-start shard server"),
            );
            let handle = net::serve_config(Arc::clone(&server), &ServeConfig::default())
                .expect("serve shard");
            shard_addrs.push(handle.local_addr().to_string());
            shard_handles.push(handle);
            servers.push(server);
        }
        addrs.push(shard_addrs);
    }
    let local = registry::load_index(&path).expect("load reference index");
    let _ = std::fs::remove_file(&path);
    let router = router::serve(manifest, addrs, &ServeConfig::default()).expect("start router");
    (
        Cluster {
            router: Some(router),
            shard_handles,
            _servers: servers,
        },
        local,
    )
}

fn by_id(mut points: Vec<Point>) -> Vec<Point> {
    points.sort_by_key(|p| p.id);
    points
}

fn pair_ids(index: &dyn SpatialIndex, probes: &[Point], radius: f64) -> Vec<(u64, u64)> {
    let mut cx = QueryContext::new();
    let mut pairs = Vec::new();
    index.distance_join_probes(probes, radius, &mut cx, &mut |a, b| {
        pairs.push((a.id, b.id));
    });
    pairs.sort_unstable();
    pairs
}

#[test]
fn router_matches_local_sharded_index_for_all_five_classes() {
    let data = generate(Distribution::skewed_default(), 4_000, 71);
    let (cluster, mut local) = spawn_cluster(&data, 1, "det");
    let mut remote = RemoteIndex::connect(&cluster.router_addr()).expect("connect");

    let windows = queries::window_queries(&data, queries::WindowSpec::default(), 25, 73);
    let knn_qs = queries::knn_queries(&data, 20, 75);
    let point_qs = queries::point_queries(&data, 100, 77);
    let negative_qs = queries::negative_point_queries(&data, 30, 79);
    let probes: Vec<Point> = data.iter().step_by(97).copied().collect();

    let compare = |remote: &RemoteIndex, local: &dyn SpatialIndex| {
        let mut cx = QueryContext::new();
        for q in point_qs.iter().chain(&negative_qs) {
            assert_eq!(
                remote.point_query(q, &mut cx),
                local.point_query(q, &mut cx),
                "point answer diverged at {q:?}"
            );
        }
        for w in &windows {
            assert_eq!(
                by_id(remote.window_query(w, &mut cx)),
                by_id(local.window_query(w, &mut cx)),
                "window set diverged at {w:?}"
            );
        }
        for q in &knn_qs {
            for k in [1usize, 7, 40] {
                assert_eq!(
                    remote.knn_query(q, k, &mut cx),
                    local.knn_query(q, k, &mut cx),
                    "kNN sequence diverged at {q:?}, k = {k}"
                );
            }
            assert_eq!(
                by_id(remote.range_query(q, 0.05, &mut cx)),
                by_id(local.range_query(q, 0.05, &mut cx)),
                "range set diverged at {q:?}"
            );
        }
        assert_eq!(
            pair_ids(remote, &probes, 0.02),
            pair_ids(local, &probes, 0.02),
            "join pair set diverged"
        );
    };

    compare(&remote, local.as_ref());

    // Route writes through both sides, then every class must still agree:
    // inserts land in shard-server delta overlays behind the router, and
    // directly in the reference index.
    for i in 0..40u64 {
        let p = Point::with_id(
            (i as f64 * 0.37 + 0.11) % 1.0,
            (i as f64 * 0.61 + 0.23) % 1.0,
            5_000_000 + i,
        );
        remote.insert(p);
        local.insert(p);
    }
    for p in data.iter().step_by(131).take(25) {
        assert_eq!(
            remote.delete(p),
            local.delete(p),
            "delete outcome diverged at {p:?}"
        );
    }
    // 40 inserts + 25 deletes, each sequenced once by the router.
    assert_eq!(remote.last_seq(), 65);

    compare(&remote, local.as_ref());
}

#[test]
fn router_fanout_accounting_matches_the_engine_planner() {
    let data = generate(Distribution::Uniform, 3_000, 81);
    let (cluster, local) = spawn_cluster(&data, 1, "stats");
    let mut client = NetClient::connect(&cluster.router_addr()).expect("connect");

    let windows = queries::window_queries(&data, queries::WindowSpec::default(), 15, 83);
    let knn_qs = queries::knn_queries(&data, 10, 85);
    let point_qs = queries::point_queries(&data, 50, 87);

    let scrape = |client: &mut NetClient| -> (u64, u64) {
        let (_, snap) = client.stats().expect("stats");
        (
            snap.counter("router.shards_visited").unwrap_or(0),
            snap.counter("router.shards_pruned").unwrap_or(0),
        )
    };
    let (v0, p0) = scrape(&mut client);
    for w in &windows {
        client.window(w).expect("window");
    }
    for q in &knn_qs {
        client.knn(q, 10).expect("knn");
    }
    for q in &point_qs {
        client.point(q).expect("point");
    }
    let (v1, p1) = scrape(&mut client);

    let mut cx = QueryContext::new();
    for w in &windows {
        let _ = local.window_query(w, &mut cx);
    }
    for q in &knn_qs {
        let _ = local.knn_query(q, 10, &mut cx);
    }
    for q in &point_qs {
        let _ = local.point_query(q, &mut cx);
    }
    let stats = cx.take_stats();
    assert_eq!(
        v1 - v0,
        stats.shards_visited,
        "router visited a different shard set than the engine planner"
    );
    assert_eq!(
        p1 - p0,
        stats.shards_pruned,
        "router pruned a different shard set than the engine planner"
    );
}

#[test]
fn killed_replica_degrades_capacity_not_correctness() {
    let data = generate(Distribution::skewed_default(), 2_000, 91);
    let (mut cluster, mut local) = spawn_cluster(&data, 2, "failover");
    let mut client = NetClient::connect(&cluster.router_addr()).expect("connect");
    let windows = queries::window_queries(&data, queries::WindowSpec::default(), 10, 93);

    // Warm the round-robin so both shard-0 replicas hold served reads.
    for w in &windows {
        client.window(w).expect("window before failover");
    }

    // Take down shard 0's first replica (handles are pushed in shard-major
    // order, so index 0 is shard 0, replica 0).
    let victim = cluster.shard_handles.remove(0);
    victim.shutdown();
    victim.join();

    // Every read must keep succeeding with correct answers: round-robin
    // reads that land on the dead replica fail over transparently.
    let mut cx = QueryContext::new();
    for _ in 0..3 {
        for w in &windows {
            let (_, got) = client.window(w).expect("window after failover");
            assert_eq!(
                by_id(got),
                by_id(local.window_query(w, &mut cx)),
                "failover produced a wrong answer"
            );
        }
    }

    // Writes to the degraded shard still apply (fan-out skips the dead
    // replica), and are visible to routed reads.
    let p = Point::with_id(0.42, 0.42, 9_000_001);
    client.insert(&p).expect("insert after failover");
    local.insert(p);
    let (_, hit) = client.point(&p).expect("point after failover");
    assert_eq!(hit, Some(p));

    let (_, snap) = client.stats().expect("stats");
    assert!(
        snap.counter("router.replica_failovers").unwrap_or(0) >= 1,
        "failover was not recorded"
    );
}

#[test]
fn wire_shutdown_propagates_to_every_shard_server() {
    let data = generate(Distribution::Uniform, 500, 95);
    let (mut cluster, _local) = spawn_cluster(&data, 1, "shutdown");
    let mut client = NetClient::connect(&cluster.router_addr()).expect("connect");
    client.shutdown_server().expect("shutdown ack");
    let router = cluster.router.take().unwrap();
    assert!(router.is_stopped());
    router.join();
    // join propagated the shutdown upstream; every shard serving loop must
    // already be stopped (its own drain finishes in its handle's join).
    for h in &cluster.shard_handles {
        assert!(
            h.is_stopped(),
            "a shard server did not receive the shutdown"
        );
    }
}

#[test]
fn mismatched_replica_sets_are_rejected() {
    let data = generate(Distribution::Uniform, 300, 97);
    let path = snapshot_path("reject");
    let index = registry::build_index(BaseKind::Grid.sharded(), &data, &cfg());
    registry::save_index(index.as_ref(), &path).expect("save");
    let (_, manifest) = registry::load_shard_manifest(&path).expect("manifest");
    let _ = std::fs::remove_file(&path);
    let n = manifest.shard_count();

    // Wrong replica-set count.
    let err = router::serve(manifest.clone(), Vec::new(), &ServeConfig::default());
    assert!(err.is_err(), "zero replica sets must be rejected");

    // A shard with no addresses.
    let err = router::serve(manifest, vec![Vec::new(); n], &ServeConfig::default());
    assert!(err.is_err(), "an empty replica set must be rejected");
}
