//! Multi-process distributed serving: a router that plans queries over
//! shard server processes using only a sharded snapshot's routing
//! metadata.
//!
//! The router loads an [`engine::ShardManifest`] — the frozen
//! [`Partitioner`] plus each shard's MBR and key range — and never touches
//! any shard's data.  Each shard's points are served by one or more
//! independent shard server processes (the ordinary `net` serving loop over
//! that shard's extracted snapshot, see `registry::load_shard_snapshot`),
//! and the router speaks the same wire protocol on both sides: clients
//! connect to it exactly as they would to a single-process server, and it
//! connects to shard servers as an ordinary [`NetClient`].
//!
//! Query planning mirrors [`engine::ShardedIndex`]'s executor decision for
//! decision, so a router in front of N shard processes returns
//! byte-identical answers to the single-process sharded index built from
//! the same snapshot:
//!
//! * **point** — route to the partitioner's primary shard; on a miss, fall
//!   back to the shards whose MBR contains the location.
//! * **window** — fan out to the shards whose MBR intersects the window,
//!   in shard order.
//! * **kNN** — best-first over non-empty shards by MINDIST to the shard
//!   MBR with the engine's distance-bound cutoff, merging per-shard
//!   candidates through [`engine::ShardedIndex::merge_candidate`]
//!   (distance ties by id).
//! * **range** — fan out to the non-empty shards whose MBR lies within the
//!   radius.
//! * **join probes** — forward to each non-empty shard only the probes
//!   within the radius of its MBR ([`storage::kernels::probes_within`]);
//!   the partitioner assigns every indexed point to exactly one shard, so
//!   the concatenated pair sets are duplicate-free by construction.
//!
//! Each shard may be served by N **replicas**.  Reads round-robin across
//! live replicas and fail over on connection errors (a killed replica
//! degrades read capacity, never correctness); writes fan out to every
//! live replica under a router-level write gate, so replica states stay
//! identical (the spatial server sequences every write, including
//! delete-misses).  A replica that fails a write is taken out of rotation
//! rather than allowed to diverge.
//!
//! Telemetry reuses the `net.*` metric names so `net-load --verify-stats`
//! and `net-stats` work against a router unmodified, and adds
//! `router.shards_visited` / `router.shards_pruned` (the planner's
//! fan-out accounting), `router.replica_failovers`, and a
//! `router.upstream_us.shard<i>` latency histogram per shard.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use engine::partition::Partitioner;
use engine::{ShardManifest, ShardedIndex};
use geom::{Point, Rect};
use net::server_loop::MAX_KNN_K;
use net::{AdmissionGate, ConnSlots, ErrorCode, NetClient, NetError, Request, Response};
use obs::{Counter, EventKind, Gauge, Histogram, Telemetry};
use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long the router keeps retrying each shard's first reachable replica
/// at startup (shard servers may still be binding their listeners).
const STARTUP_CONNECT_DEADLINE: Duration = Duration::from_secs(10);

/// A point-in-time sample of the router's serving counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct RouterStats {
    /// Client connections accepted since start.
    pub connections: u64,
    /// Requests fully decoded (including ones later shed).
    pub requests: u64,
    /// Requests shed by admission control (or refused because a shard had
    /// no live replicas).
    pub shed: u64,
}

#[derive(Default)]
struct StatCounters {
    connections: AtomicU64,
    requests: AtomicU64,
    shed: AtomicU64,
}

/// Pre-registered telemetry handles.  The `net.*` names match the
/// single-process serving loop's so existing scrape tooling reconciles
/// against a router unchanged; the `router.*` names carry the planner's
/// own accounting.
struct RouterMetrics {
    /// `net.requests.<class>`: responses delivered successfully, per class.
    completed: [Counter; 7],
    /// `net.shed.<class>`: requests refused (admission or dead shard).
    shed: [Counter; 7],
    /// `net.latency_us.<class>`: decode-to-delivery latency, microseconds.
    latency: [Histogram; 7],
    /// `net.bad_request`: undecodable or semantically invalid requests.
    bad_request: Counter,
    /// `net.inflight`: admission tokens currently held.
    inflight: Gauge,
    /// `net.connections_open` / `net.connections_total`.
    connections_open: Gauge,
    connections_total: Counter,
    /// `router.shards_visited`: shard servers consulted by the planner.
    shards_visited: Counter,
    /// `router.shards_pruned`: shards excluded by routing or MBR bounds.
    shards_pruned: Counter,
    /// `router.replica_failovers`: replicas taken out of rotation.
    replica_failovers: Counter,
}

impl RouterMetrics {
    fn register(t: &Telemetry) -> Self {
        Self {
            completed: std::array::from_fn(|i| {
                t.metrics
                    .counter(&format!("net.requests.{}", net::REQUEST_CLASSES[i]))
            }),
            shed: std::array::from_fn(|i| {
                t.metrics
                    .counter(&format!("net.shed.{}", net::REQUEST_CLASSES[i]))
            }),
            latency: std::array::from_fn(|i| {
                t.metrics
                    .histogram(&format!("net.latency_us.{}", net::REQUEST_CLASSES[i]))
            }),
            bad_request: t.metrics.counter("net.bad_request"),
            inflight: t.metrics.gauge("net.inflight"),
            connections_open: t.metrics.gauge("net.connections_open"),
            connections_total: t.metrics.counter("net.connections_total"),
            shards_visited: t.metrics.counter("router.shards_visited"),
            shards_pruned: t.metrics.counter("router.shards_pruned"),
            replica_failovers: t.metrics.counter("router.replica_failovers"),
        }
    }
}

/// Index into [`net::REQUEST_CLASSES`] for a plannable request; `None` for
/// the control messages answered inline.
fn class_index(req: &Request) -> Option<usize> {
    match req {
        Request::Point(_) => Some(0),
        Request::Window(_) => Some(1),
        Request::Knn(..) => Some(2),
        Request::Range(..) => Some(3),
        Request::JoinProbes(..) => Some(4),
        Request::Insert(_) => Some(5),
        Request::Delete(_) => Some(6),
        Request::Ping | Request::Shutdown | Request::Stats | Request::Events { .. } => None,
    }
}

/// Semantic validation, mirroring the single-process serving loop's rules
/// so a client sees the same refusals whichever front-end it talks to.
fn validate(req: &Request) -> Result<(), String> {
    match req {
        Request::Knn(_, k) if *k > MAX_KNN_K => {
            Err(format!("k {k} exceeds the cap of {MAX_KNN_K}"))
        }
        Request::Range(_, radius) | Request::JoinProbes(_, radius)
            if !radius.is_finite() || *radius < 0.0 =>
        {
            Err(format!(
                "radius {radius} is not a finite non-negative value"
            ))
        }
        _ => Ok(()),
    }
}

/// Whether an upstream error means the connection (or replica) is unusable,
/// as opposed to a semantic refusal the router should relay.  Overload,
/// drain, and remote refusals travel back to the client; everything else —
/// socket errors, truncation, framing corruption — is grounds for failover.
fn is_conn_error(e: &NetError) -> bool {
    !matches!(
        e,
        NetError::Overload | NetError::ShuttingDown | NetError::Remote(_)
    )
}

/// One upstream connection to a shard server process.
struct Replica {
    addr: String,
    /// Pooled connection, created lazily and dropped on failure.
    client: Mutex<Option<NetClient>>,
    /// Out of rotation after a failure; never resurrected (restart the
    /// router to re-admit a recovered process).
    dead: AtomicBool,
}

impl Replica {
    fn new(addr: String) -> Self {
        Self {
            addr,
            client: Mutex::new(None),
            dead: AtomicBool::new(false),
        }
    }

    /// Runs `f` against this replica's pooled connection, connecting
    /// lazily.  With `retry` set, one connection error triggers a single
    /// reconnect-and-retry — safe for reads, **never** used for writes (a
    /// write whose request may already have reached the server must not be
    /// re-sent, or the replica could apply it twice and diverge).
    fn call<T>(
        &self,
        retry: bool,
        f: &dyn Fn(&mut NetClient) -> Result<T, NetError>,
    ) -> Result<T, NetError> {
        let mut slot = self.client.lock().expect("replica client lock poisoned");
        let attempts = if retry { 2 } else { 1 };
        let mut last = None;
        for _ in 0..attempts {
            if slot.is_none() {
                match NetClient::connect(&self.addr) {
                    Ok(c) => *slot = Some(c),
                    Err(e) => return Err(e),
                }
            }
            match f(slot.as_mut().expect("connected above")) {
                Ok(v) => return Ok(v),
                Err(e) if is_conn_error(&e) => {
                    // The stream is unusable; drop it so the next attempt
                    // (here or on a later call) starts fresh.
                    *slot = None;
                    last = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last.expect("loop ran at least once"))
    }
}

/// Router-side view of one shard: live routing state the planner reads on
/// every query, plus the shard's replica set.
struct ShardState {
    /// The shard's MBR — seeded from the manifest, expanded on inserts
    /// exactly as the single-process engine expands its shard MBRs.
    mbr: RwLock<Rect>,
    /// Live point count, scraped from the shard server's `server.points`
    /// gauge at startup and maintained on routed writes.  Drives the kNN
    /// `k_eff` clamp and empty-shard pruning, mirroring the engine's
    /// per-shard `len()` checks.
    len: AtomicU64,
    replicas: Vec<Replica>,
    /// Round-robin cursor for read distribution.
    rr: AtomicUsize,
    /// `router.upstream_us.shard<i>`: per-shard upstream read latency.
    upstream_us: Histogram,
}

struct Core {
    partitioner: Partitioner,
    shards: Vec<ShardState>,
    addr: SocketAddr,
    acceptor_count: usize,
    stop: AtomicBool,
    admission: AdmissionGate,
    /// Serializes writes: the fan-out to a shard's replicas must not
    /// interleave with another write's fan-out, or replica op streams (and
    /// the router's MBR/len bookkeeping) could diverge.
    write_gate: Mutex<()>,
    /// Router-level write sequence: bumped once per successful client
    /// write, sampled by reads — the same contract a single-process
    /// server's `Snapshot::seq` gives replay oracles.
    seq: AtomicU64,
    stats: StatCounters,
    next_conn_id: AtomicU64,
    conn_streams: Mutex<HashMap<u64, TcpStream>>,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
    telemetry: Arc<Telemetry>,
    metrics: RouterMetrics,
    last_shed_event_us: AtomicU64,
    /// Shutdown has been propagated to the shard servers (runs once).
    propagated: AtomicBool,
}

impl Core {
    fn current_seq(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }

    fn note_fanout(&self, visited: u64, pruned: u64) {
        self.metrics.shards_visited.add(visited);
        self.metrics.shards_pruned.add(pruned);
    }

    fn note_shed(&self, class: usize) {
        self.stats.shed.fetch_add(1, Ordering::Relaxed);
        self.metrics.shed[class].inc();
        let now_us = self.telemetry.journal.uptime_us();
        let last = self.last_shed_event_us.load(Ordering::Relaxed);
        if now_us.saturating_sub(last) >= 1_000_000
            && self
                .last_shed_event_us
                .compare_exchange(last, now_us, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            self.telemetry.journal.record(EventKind::OverloadShed {
                shed_total: self.stats.shed.load(Ordering::Relaxed),
            });
        }
    }

    /// Takes a replica out of rotation (idempotent) and records the
    /// failover.
    fn mark_dead(&self, shard: usize, replica: usize) {
        if !self.shards[shard].replicas[replica]
            .dead
            .swap(true, Ordering::AcqRel)
        {
            self.metrics.replica_failovers.inc();
            self.telemetry.journal.record(EventKind::ReplicaFailover {
                shard: shard as u64,
                replica: replica as u64,
            });
        }
    }

    /// One read against `shard`: round-robin over live replicas, failing
    /// over on connection errors.  Semantic refusals (overload, drain)
    /// propagate; `Err(Overload)` with no live replica means the shard is
    /// gone.
    fn read_shard<T>(
        &self,
        shard: usize,
        f: impl Fn(&mut NetClient) -> Result<T, NetError>,
    ) -> Result<T, NetError> {
        let st = &self.shards[shard];
        let n = st.replicas.len();
        let start = st.rr.fetch_add(1, Ordering::Relaxed) % n;
        let mut conn_err = None;
        for off in 0..n {
            let i = (start + off) % n;
            let rep = &st.replicas[i];
            if rep.dead.load(Ordering::Acquire) {
                continue;
            }
            let t0 = Instant::now();
            match rep.call(true, &f) {
                Ok(v) => {
                    st.upstream_us.record(t0.elapsed().as_micros() as u64);
                    return Ok(v);
                }
                Err(e) if is_conn_error(&e) => {
                    self.mark_dead(shard, i);
                    conn_err = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(conn_err.unwrap_or(NetError::Overload))
    }

    /// One write against `shard`, fanned out to **every** live replica so
    /// their states stay identical.  Returns the first success (`None`
    /// when no replica accepted it).  A replica that fails a write — for
    /// any reason — is taken out of rotation rather than allowed to miss
    /// an op and diverge.
    fn write_shard<T>(
        &self,
        shard: usize,
        f: impl Fn(&mut NetClient) -> Result<T, NetError>,
    ) -> Option<T> {
        let st = &self.shards[shard];
        let mut first = None;
        for (i, rep) in st.replicas.iter().enumerate() {
            if rep.dead.load(Ordering::Acquire) {
                continue;
            }
            match rep.call(false, &f) {
                Ok(v) => {
                    if first.is_none() {
                        first = Some(v);
                    }
                }
                Err(_) => self.mark_dead(shard, i),
            }
        }
        first
    }

    /// Maps an upstream read failure onto a client-facing refusal.
    fn upstream_error(&self, shard: usize, e: NetError) -> Response {
        match e {
            NetError::ShuttingDown => Response::Error {
                code: ErrorCode::ShuttingDown,
                message: format!("shard {shard} is draining"),
            },
            NetError::Remote(msg) => Response::Error {
                code: ErrorCode::BadRequest,
                message: format!("shard {shard} refused: {msg}"),
            },
            NetError::Overload => Response::Error {
                code: ErrorCode::Overload,
                message: format!("shard {shard} overloaded or has no live replicas"),
            },
            other => Response::Error {
                code: ErrorCode::Overload,
                message: format!("shard {shard} unreachable: {other}"),
            },
        }
    }

    /// Plans and executes one admitted request.  Every branch mirrors the
    /// corresponding [`engine::ShardedIndex`] executor path, including its
    /// visited/pruned accounting.
    fn exec(&self, req: Request) -> Response {
        match req {
            Request::Point(p) => self.exec_point(p),
            Request::Window(w) => self.exec_window(w),
            Request::Knn(p, k) => self.exec_knn(p, k),
            Request::Range(p, radius) => self.exec_range(p, radius),
            Request::JoinProbes(probes, radius) => self.exec_join(&probes, radius),
            Request::Insert(p) => self.exec_insert(p),
            Request::Delete(p) => self.exec_delete(p),
            Request::Ping | Request::Shutdown | Request::Stats | Request::Events { .. } => {
                Response::Error {
                    code: ErrorCode::BadRequest,
                    message: "control requests are answered inline".into(),
                }
            }
        }
    }

    fn exec_point(&self, q: Point) -> Response {
        let seq = self.current_seq();
        let n = self.shards.len();
        let primary = self.partitioner.route(q.x, q.y);
        let mut visited = 1u64;
        match self.read_shard(primary, |c| c.point(&q)) {
            Ok((_, Some(hit))) => {
                self.note_fanout(visited, (n - 1) as u64);
                return Response::Point {
                    seq,
                    hit: Some(hit),
                };
            }
            Ok((_, None)) => {}
            Err(e) => return self.upstream_error(primary, e),
        }
        // Miss in the routed shard: fall back to the shards whose MBR can
        // contain the location, exactly as the engine does.
        let mut pruned = n - 1;
        for i in 0..n {
            if i == primary || !self.shards[i].mbr.read().unwrap().contains(&q) {
                continue;
            }
            pruned -= 1;
            visited += 1;
            match self.read_shard(i, |c| c.point(&q)) {
                Ok((_, Some(hit))) => {
                    self.note_fanout(visited, pruned as u64);
                    return Response::Point {
                        seq,
                        hit: Some(hit),
                    };
                }
                Ok((_, None)) => {}
                Err(e) => return self.upstream_error(i, e),
            }
        }
        self.note_fanout(visited, pruned as u64);
        Response::Point { seq, hit: None }
    }

    fn exec_window(&self, w: Rect) -> Response {
        let seq = self.current_seq();
        let mut points = Vec::new();
        let (mut visited, mut pruned) = (0u64, 0u64);
        for (i, st) in self.shards.iter().enumerate() {
            if st.mbr.read().unwrap().intersects(&w) {
                visited += 1;
                match self.read_shard(i, |c| c.window(&w)) {
                    Ok((_, ps)) => points.extend(ps),
                    Err(e) => return self.upstream_error(i, e),
                }
            } else {
                pruned += 1;
            }
        }
        self.note_fanout(visited, pruned);
        Response::Points { seq, points }
    }

    fn exec_knn(&self, q: Point, k: u32) -> Response {
        let seq = self.current_seq();
        if k == 0 {
            return Response::Knn {
                seq,
                points: Vec::new(),
            };
        }
        let lens: Vec<u64> = self
            .shards
            .iter()
            .map(|s| s.len.load(Ordering::Acquire))
            .collect();
        let total: u64 = lens.iter().sum();
        let k_eff = (k as usize).min(total as usize);
        if k_eff == 0 {
            return Response::Knn {
                seq,
                points: Vec::new(),
            };
        }
        // Best-first over non-empty shards by MINDIST to the shard MBR,
        // ties by shard position — the engine's order.
        let mut order: Vec<(f64, usize)> = self
            .shards
            .iter()
            .enumerate()
            .filter(|(i, _)| lens[*i] > 0)
            .map(|(i, s)| (s.mbr.read().unwrap().min_dist_sq(&q), i))
            .collect();
        order.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        let empty_shards = self.shards.len() - order.len();
        let mut best: Vec<(f64, Point)> = Vec::with_capacity(k_eff + 1);
        let mut pruned = empty_shards as u64;
        let mut visited = 0u64;
        for (i, &(mindist_sq, shard)) in order.iter().enumerate() {
            // The engine's distance-bound cutoff: once k candidates are in
            // hand, a shard beyond the k-th distance (and every later,
            // farther shard) cannot contribute.
            if best.len() >= k_eff && mindist_sq > best[k_eff - 1].0 {
                pruned += (order.len() - i) as u64;
                break;
            }
            visited += 1;
            match self.read_shard(shard, |c| c.knn(&q, k_eff as u32)) {
                Ok((_, ps)) => {
                    for p in ps {
                        ShardedIndex::merge_candidate(&mut best, k_eff, p.dist_sq(&q), p);
                    }
                }
                Err(e) => return self.upstream_error(shard, e),
            }
        }
        self.note_fanout(visited, pruned);
        Response::Knn {
            seq,
            points: best.into_iter().map(|(_, p)| p).collect(),
        }
    }

    fn exec_range(&self, center: Point, radius: f64) -> Response {
        let seq = self.current_seq();
        let r_sq = radius * radius;
        let mut points = Vec::new();
        let (mut visited, mut pruned) = (0u64, 0u64);
        for (i, st) in self.shards.iter().enumerate() {
            let non_empty = st.len.load(Ordering::Acquire) > 0;
            if non_empty && st.mbr.read().unwrap().min_dist_sq(&center) <= r_sq {
                visited += 1;
                match self.read_shard(i, |c| c.range(&center, radius)) {
                    Ok((_, ps)) => points.extend(ps),
                    Err(e) => return self.upstream_error(i, e),
                }
            } else {
                pruned += 1;
            }
        }
        self.note_fanout(visited, pruned);
        Response::Points { seq, points }
    }

    fn exec_join(&self, probes: &[Point], radius: f64) -> Response {
        let seq = self.current_seq();
        let mut pairs = Vec::new();
        if probes.is_empty() {
            return Response::Pairs { seq, pairs };
        }
        let r_sq = radius * radius;
        let (mut visited, mut pruned) = (0u64, 0u64);
        let mut kept: Vec<Point> = Vec::new();
        for (i, st) in self.shards.iter().enumerate() {
            if st.len.load(Ordering::Acquire) == 0 {
                pruned += 1;
                continue;
            }
            let mbr = *st.mbr.read().unwrap();
            storage::kernels::probes_within(probes, &mbr, r_sq, &mut kept);
            if kept.is_empty() {
                pruned += 1;
                continue;
            }
            visited += 1;
            match self.read_shard(i, |c| c.join_probes(&kept, radius)) {
                Ok((_, ps)) => pairs.extend(ps),
                Err(e) => return self.upstream_error(i, e),
            }
        }
        self.note_fanout(visited, pruned);
        Response::Pairs { seq, pairs }
    }

    fn exec_insert(&self, p: Point) -> Response {
        let _gate = self.write_gate.lock().expect("write gate poisoned");
        let shard = self.partitioner.route(p.x, p.y);
        match self.write_shard(shard, |c| c.insert(&p)) {
            Some(_) => {
                self.shards[shard].mbr.write().unwrap().expand_to_point(p);
                self.shards[shard].len.fetch_add(1, Ordering::AcqRel);
                let seq = self.seq.fetch_add(1, Ordering::AcqRel) + 1;
                Response::Written {
                    seq,
                    removed: false,
                }
            }
            None => Response::Error {
                code: ErrorCode::Overload,
                message: format!("shard {shard} has no live replicas"),
            },
        }
    }

    fn exec_delete(&self, p: Point) -> Response {
        let _gate = self.write_gate.lock().expect("write gate poisoned");
        let n = self.shards.len();
        let primary = self.partitioner.route(p.x, p.y);
        // Primary first, then the MBR-containment sweep — the engine's
        // delete order.  Every attempted shard's delete goes to all of its
        // live replicas (the shard server sequences even a delete-miss, so
        // replicas must see the same op stream).
        let mut removed_in = None;
        match self.write_shard(primary, |c| c.delete(&p)) {
            Some((true, _)) => removed_in = Some(primary),
            Some((false, _)) => {}
            None => {
                return Response::Error {
                    code: ErrorCode::Overload,
                    message: format!("shard {primary} has no live replicas"),
                }
            }
        }
        if removed_in.is_none() {
            for i in 0..n {
                if i == primary || !self.shards[i].mbr.read().unwrap().contains(&p) {
                    continue;
                }
                match self.write_shard(i, |c| c.delete(&p)) {
                    Some((true, _)) => {
                        removed_in = Some(i);
                        break;
                    }
                    Some((false, _)) => {}
                    None => {
                        return Response::Error {
                            code: ErrorCode::Overload,
                            message: format!("shard {i} has no live replicas"),
                        }
                    }
                }
            }
        }
        if let Some(shard) = removed_in {
            // Saturating: duplicate locations can make the maintained count
            // an approximation; it must never underflow.
            let _ = self.shards[shard]
                .len
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| {
                    Some(v.saturating_sub(1))
                });
        }
        let seq = self.seq.fetch_add(1, Ordering::AcqRel) + 1;
        Response::Written {
            seq,
            removed: removed_in.is_some(),
        }
    }

    /// Sets the stop flag and unblocks everything waiting on a socket —
    /// the same drain choreography as the single-process serving loop.
    /// Upstream propagation happens later, in [`RouterHandle::join`], so
    /// in-flight fan-outs complete against live shard servers first.
    fn begin_shutdown(&self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        self.telemetry.journal.record(EventKind::Shutdown {
            uptime_us: self.telemetry.journal.uptime_us(),
            drained: self.admission.inflight(),
        });
        for _ in 0..self.acceptor_count {
            let _ = TcpStream::connect(self.addr);
        }
        let streams = self.conn_streams.lock().unwrap();
        for stream in streams.values() {
            let _ = stream.shutdown(Shutdown::Read);
        }
    }

    fn stats(&self) -> RouterStats {
        RouterStats {
            connections: self.stats.connections.load(Ordering::Relaxed),
            requests: self.stats.requests.load(Ordering::Relaxed),
            shed: self.stats.shed.load(Ordering::Relaxed),
        }
    }
}

/// Running router: owns the acceptor pool and every per-connection thread.
///
/// Dropping the handle shuts the router down, drains client connections,
/// propagates a graceful shutdown to every live shard replica, and joins
/// all threads; call [`RouterHandle::shutdown`] + [`RouterHandle::join`]
/// to do it explicitly.
pub struct RouterHandle {
    core: Arc<Core>,
    acceptors: Vec<JoinHandle<()>>,
}

impl RouterHandle {
    /// The bound address (resolves the actual port when served on port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.core.addr
    }

    /// Point-in-time serving counters.
    pub fn stats(&self) -> RouterStats {
        self.core.stats()
    }

    /// The router's telemetry sink (scraped over the wire via `Stats`).
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.core.telemetry
    }

    /// Whether a shutdown (local or via a wire `Shutdown` request) has
    /// begun.
    pub fn is_stopped(&self) -> bool {
        self.core.stop.load(Ordering::Acquire)
    }

    /// Begins a graceful shutdown: stop accepting, refuse new requests,
    /// drain in-flight fan-outs.  Idempotent; returns without waiting —
    /// call [`RouterHandle::join`] to wait for the drain and the upstream
    /// propagation.
    pub fn shutdown(&self) {
        self.core.begin_shutdown();
    }

    /// Waits for the full drain, then propagates a graceful shutdown to
    /// every live shard replica — a `net-load --shutdown-server` run
    /// against a router therefore takes the whole process tree down, with
    /// every process draining its in-flight work first.
    pub fn join(mut self) {
        self.join_inner();
    }

    fn join_inner(&mut self) {
        self.core.begin_shutdown();
        for h in self.acceptors.drain(..) {
            let _ = h.join();
        }
        // Connections registered concurrently with begin_shutdown's poke
        // sweep get their read half shut down here instead.
        let streams: Vec<TcpStream> = {
            let mut map = self.core.conn_streams.lock().unwrap();
            map.drain().map(|(_, s)| s).collect()
        };
        for s in &streams {
            let _ = s.shutdown(Shutdown::Read);
        }
        let conn_threads: Vec<JoinHandle<()>> =
            self.core.conn_threads.lock().unwrap().drain(..).collect();
        for h in conn_threads {
            let _ = h.join();
        }
        // Client side fully drained: now take the shard servers down too.
        // Each acks the shutdown before draining, so this returns quickly;
        // their own handles (in their own processes) finish the drain.
        if !self.core.propagated.swap(true, Ordering::AcqRel) {
            for shard in &self.core.shards {
                for rep in &shard.replicas {
                    if rep.dead.load(Ordering::Acquire) {
                        continue;
                    }
                    let _ = rep.call(false, &|c: &mut NetClient| c.shutdown_server());
                }
            }
        }
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        self.join_inner();
    }
}

/// Starts a router over `manifest`'s routing table, with
/// `replicas[shard]` listing the shard server addresses serving each
/// shard (every shard needs at least one).  Network knobs — bind address,
/// acceptor pool, admission windows — come from the unified `cfg`; the
/// compaction subset is ignored (compaction happens in the shard server
/// processes).
///
/// Startup scrapes each shard's live point count from the first reachable
/// replica's `server.points` gauge (retrying for up to 10 seconds — shard
/// servers may still be binding), seeding the planner's empty-shard
/// pruning and kNN clamp; the count is maintained on routed writes from
/// then on.
pub fn serve(
    manifest: ShardManifest,
    replicas: Vec<Vec<String>>,
    cfg: &server::ServeConfig,
) -> Result<RouterHandle, NetError> {
    let n_shards = manifest.shard_count();
    if n_shards == 0 {
        return Err(NetError::Corrupt("manifest routes to zero shards".into()));
    }
    if replicas.len() != n_shards {
        return Err(NetError::Corrupt(format!(
            "manifest routes to {n_shards} shards but {} replica sets were given",
            replicas.len()
        )));
    }
    if let Some(i) = replicas.iter().position(|r| r.is_empty()) {
        return Err(NetError::Corrupt(format!(
            "shard {i} has no replica addresses"
        )));
    }
    let telemetry = Arc::new(Telemetry::new());
    let metrics = RouterMetrics::register(&telemetry);
    let mut shards = Vec::with_capacity(n_shards);
    let mut total_points = 0u64;
    for (i, (meta, addrs)) in manifest.shards.iter().zip(replicas).enumerate() {
        let shard_replicas: Vec<Replica> = addrs.into_iter().map(Replica::new).collect();
        let len = scrape_shard_len(i, &shard_replicas)?;
        total_points += len;
        shards.push(ShardState {
            mbr: RwLock::new(meta.mbr),
            len: AtomicU64::new(len),
            replicas: shard_replicas,
            rr: AtomicUsize::new(0),
            upstream_us: telemetry
                .metrics
                .histogram(&format!("router.upstream_us.shard{i}")),
        });
    }
    telemetry.journal.record(EventKind::ServerStart {
        points: total_points,
    });
    let listener = TcpListener::bind(&cfg.bind_addr)?;
    let addr = listener.local_addr()?;
    let acceptor_count = cfg.acceptors.max(1);
    let core = Arc::new(Core {
        partitioner: manifest.partitioner,
        shards,
        addr,
        acceptor_count,
        stop: AtomicBool::new(false),
        admission: AdmissionGate::new(
            cfg.global_inflight,
            cfg.per_conn_inflight,
            metrics.inflight.clone(),
        ),
        write_gate: Mutex::new(()),
        seq: AtomicU64::new(0),
        stats: StatCounters::default(),
        next_conn_id: AtomicU64::new(0),
        conn_streams: Mutex::new(HashMap::new()),
        conn_threads: Mutex::new(Vec::new()),
        telemetry,
        metrics,
        last_shed_event_us: AtomicU64::new(0),
        propagated: AtomicBool::new(false),
    });
    let acceptors = (0..acceptor_count)
        .map(|_| {
            let core = Arc::clone(&core);
            let listener = listener.try_clone().map_err(NetError::Io)?;
            Ok(std::thread::spawn(move || acceptor_loop(&core, &listener)))
        })
        .collect::<Result<Vec<_>, NetError>>()?;
    Ok(RouterHandle { core, acceptors })
}

/// Scrapes a shard's live point count from the first reachable replica's
/// `server.points` gauge, pooling the connection for later reads.
fn scrape_shard_len(shard: usize, replicas: &[Replica]) -> Result<u64, NetError> {
    let mut last = None;
    for rep in replicas {
        match NetClient::connect_retry(&rep.addr, STARTUP_CONNECT_DEADLINE) {
            Ok(mut client) => {
                let (_, snapshot) = client.stats()?;
                let points = snapshot.gauge("server.points").ok_or_else(|| {
                    NetError::Corrupt(format!(
                        "shard {shard} server at {} exposes no server.points gauge",
                        rep.addr
                    ))
                })?;
                *rep.client.lock().expect("replica client lock poisoned") = Some(client);
                return Ok(points.max(0) as u64);
            }
            Err(e) => last = Some(e),
        }
    }
    Err(last.unwrap_or(NetError::Closed))
}

fn acceptor_loop(core: &Arc<Core>, listener: &TcpListener) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if core.stop.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
        };
        if core.stop.load(Ordering::Acquire) {
            return;
        }
        core.stats.connections.fetch_add(1, Ordering::Relaxed);
        core.metrics.connections_total.inc();
        let _ = stream.set_nodelay(true);
        let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
        let id = core.next_conn_id.fetch_add(1, Ordering::Relaxed);
        let read_poke = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => continue,
        };
        core.conn_streams.lock().unwrap().insert(id, read_poke);
        let handle = {
            let core = Arc::clone(core);
            std::thread::spawn(move || connection_loop(&core, id, stream))
        };
        let mut threads = core.conn_threads.lock().unwrap();
        threads.retain(|h| !h.is_finished());
        threads.push(handle);
        drop(threads);
        if core.stop.load(Ordering::Acquire) {
            if let Some(s) = core.conn_streams.lock().unwrap().get(&id) {
                let _ = s.shutdown(Shutdown::Read);
            }
            return;
        }
    }
}

/// One client connection, processed serially: the router is a scatter
/// point, not a compute node, so a request's latency is its upstream
/// fan-out — responses are naturally in request order and no reorder
/// buffer is needed.
fn connection_loop(core: &Arc<Core>, id: u64, mut stream: TcpStream) {
    let slots = ConnSlots::default();
    core.metrics.connections_open.add(1);
    core.telemetry
        .journal
        .record(EventKind::ConnOpen { conn: id });
    while let Ok(Some(payload)) = net::wire::read_frame(&mut stream) {
        let t0 = Instant::now();
        core.stats.requests.fetch_add(1, Ordering::Relaxed);
        let req = match Request::decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                core.metrics.bad_request.inc();
                let resp = Response::Error {
                    code: ErrorCode::BadRequest,
                    message: e.to_string(),
                };
                if net::wire::write_frame(&mut stream, &resp.encode()).is_err() {
                    break;
                }
                continue;
            }
        };
        let resp = match req {
            Request::Ping => Response::Pong {
                seq: core.current_seq(),
            },
            Request::Stats => Response::Stats {
                seq: core.current_seq(),
                metrics: core.telemetry.metrics.snapshot(),
            },
            Request::Events { since } => Response::Events {
                seq: core.current_seq(),
                events: core.telemetry.journal.since(since),
            },
            Request::Shutdown => {
                // Stop flag first, ack second — a client that received the
                // ack must observe the router as stopped.  Propagation to
                // the shard servers happens in join, after the drain.
                core.begin_shutdown();
                Response::Pong {
                    seq: core.current_seq(),
                }
            }
            req => {
                let class = class_index(&req).expect("plannable request");
                if core.stop.load(Ordering::Acquire) {
                    Response::Error {
                        code: ErrorCode::ShuttingDown,
                        message: "router is draining".into(),
                    }
                } else if let Err(msg) = validate(&req) {
                    core.metrics.bad_request.inc();
                    Response::Error {
                        code: ErrorCode::BadRequest,
                        message: msg,
                    }
                } else if !core.admission.try_admit(&slots) {
                    core.note_shed(class);
                    Response::Error {
                        code: ErrorCode::Overload,
                        message: "in-flight queue full".into(),
                    }
                } else {
                    let resp = core.exec(req);
                    core.admission.release(&slots);
                    match &resp {
                        Response::Error {
                            code: ErrorCode::Overload,
                            ..
                        } => core.note_shed(class),
                        Response::Error { .. } => {}
                        _ => {
                            core.metrics.completed[class].inc();
                            core.metrics.latency[class].record(t0.elapsed().as_micros() as u64);
                        }
                    }
                    resp
                }
            }
        };
        if net::wire::write_frame(&mut stream, &resp.encode()).is_err() {
            break;
        }
    }
    core.conn_streams.lock().unwrap().remove(&id);
    core.metrics.connections_open.add(-1);
    core.telemetry
        .journal
        .record(EventKind::ConnClose { conn: id });
}
