//! Baseline spatial indices the paper compares RSMI against (§6.1).
//!
//! | Paper name | Type | Module |
//! |---|---|---|
//! | Grid       | Grid File (regular grid, block buckets)              | [`gridfile`] |
//! | KDB        | K-D-B-tree (space-partitioning, block storage)       | [`kdb`]      |
//! | HRR        | Rank-space Hilbert-packed R-tree (bulk-loaded)       | [`hrr`]      |
//! | RR\*       | R\*-tree built by dynamic insertion                  | [`rstar`]    |
//! | ZM         | Z-order learned model (3-level RMI over Z-values)    | [`zm`]       |
//!
//! Every index implements [`common::SpatialIndex`], stores its data points in
//! blocks of the same capacity `B`, and charges node/block reads per query to
//! the caller's `common::QueryContext`, so that the "# block accesses" axis
//! of the paper's figures is comparable across index families and every
//! index stays `Send + Sync`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gridfile;
pub mod hrr;
pub mod kdb;
pub mod rstar;
pub mod zm;

pub use gridfile::GridFile;
pub use hrr::HilbertRTree;
pub use kdb::KdbTree;
pub use rstar::RStarTree;
pub use zm::ZOrderModel;
