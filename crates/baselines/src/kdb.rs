//! K-D-B-tree baseline (Robinson, SIGMOD 1981), as used in §6.1: a kd-tree
//! realised with B-tree-style multi-way nodes so that both the directory and
//! the data reside in fixed-capacity blocks.
//!
//! The bulk-load recursively cuts each node's region into an (up to)
//! `√F x √F` grid of equi-depth cells (quantile cuts by x, then by y inside
//! every column), mirroring the alternating-dimension splits of a kd-tree
//! while keeping the fan-out of a disk-based K-D-B-tree.  Regions tile their
//! parent region exactly, so every location belongs to exactly one leaf —
//! the property that makes K-D-B window queries overlap-free.

use common::{QueryContext, SpatialIndex};
use geom::{Point, Rect};
use persist::{PersistError, SnapshotReader, SnapshotWriter};
use storage::{BlockId, BlockStore};

/// Directory fan-out (√FANOUT cuts per dimension), matching the paper's 100
/// entries per internal node.
const FANOUT_SIDE: usize = 10;

/// Section tag of the K-D-B directory.
const SECTION_KDB: u32 = 0x4B01;

#[derive(Debug, Clone)]
enum NodeKind {
    Internal(Vec<usize>),
    Leaf(BlockId),
}

#[derive(Debug, Clone)]
struct KdbNode {
    region: Rect,
    kind: NodeKind,
}

/// The K-D-B-tree ("KDB" in the paper's figures).
#[derive(Debug)]
pub struct KdbTree {
    store: BlockStore,
    nodes: Vec<KdbNode>,
    root: Option<usize>,
    height: usize,
    n_points: usize,
}

impl KdbTree {
    /// Bulk-loads a K-D-B-tree with the given block capacity.
    pub fn build(points: Vec<Point>, block_capacity: usize) -> Self {
        let mut tree = Self {
            store: BlockStore::new(block_capacity),
            nodes: Vec::new(),
            root: None,
            height: 0,
            n_points: points.len(),
        };
        if !points.is_empty() {
            let root = tree.build_node(points, Rect::unit(), 1);
            tree.root = Some(root);
        }
        tree
    }

    fn build_node(&mut self, mut points: Vec<Point>, region: Rect, depth: usize) -> usize {
        self.height = self.height.max(depth);
        let capacity = self.store.capacity();
        if points.len() <= capacity {
            let block = self.store.allocate();
            for p in &points {
                self.store.block_mut(block).push(*p);
            }
            let id = self.nodes.len();
            self.nodes.push(KdbNode {
                region,
                kind: NodeKind::Leaf(block),
            });
            return id;
        }
        // Quantile cuts: up to FANOUT_SIDE columns by x, then as many cells
        // by y within each column.  The cut count adapts to the node's
        // cardinality so leaves stay close to full (≈ `capacity` points)
        // instead of degenerating into near-empty blocks.  Cell regions tile
        // `region` exactly.
        let n = points.len();
        let side = ((n as f64 / capacity as f64).sqrt().ceil() as usize).clamp(2, FANOUT_SIDE);
        points.sort_by(|a, b| a.x.partial_cmp(&b.x).unwrap_or(std::cmp::Ordering::Equal));
        let col_size = n.div_ceil(side);
        let mut children = Vec::new();
        let n_cols = n.div_ceil(col_size);
        let mut col_points: Vec<Vec<Point>> =
            points.chunks(col_size).map(<[Point]>::to_vec).collect();
        let mut x_lo = region.min_x;
        for (ci, col) in col_points.iter_mut().enumerate() {
            // The column's upper x boundary: the parent's boundary for the
            // last column, otherwise the first x of the next column.
            let x_hi = if ci + 1 == n_cols {
                region.max_x
            } else {
                points[(ci + 1) * col_size].x
            };
            col.sort_by(|a, b| a.y.partial_cmp(&b.y).unwrap_or(std::cmp::Ordering::Equal));
            let cell_size = col.len().div_ceil(side).max(1);
            let n_cells = col.len().div_ceil(cell_size);
            let mut y_lo = region.min_y;
            for (ri, cell) in col.chunks(cell_size).enumerate() {
                let y_hi = if ri + 1 == n_cells {
                    region.max_y
                } else {
                    col[(ri + 1) * cell_size].y
                };
                let cell_region = Rect::new(x_lo, y_lo, x_hi, y_hi);
                let child = self.build_node(cell.to_vec(), cell_region, depth + 1);
                children.push(child);
                y_lo = y_hi;
            }
            x_lo = x_hi;
        }
        let id = self.nodes.len();
        self.nodes.push(KdbNode {
            region,
            kind: NodeKind::Internal(children),
        });
        id
    }

    /// Descends to the leaf whose region contains the point.
    fn locate_leaf(&self, p: &Point) -> Option<usize> {
        let mut cur = self.root?;
        loop {
            match &self.nodes[cur].kind {
                NodeKind::Leaf(_) => return Some(cur),
                NodeKind::Internal(children) => {
                    let next = children
                        .iter()
                        .copied()
                        .find(|&c| self.nodes[c].region.contains(p))
                        // Numerical edge: fall back to the nearest region.
                        .or_else(|| {
                            children.iter().copied().min_by(|&a, &b| {
                                self.nodes[a]
                                    .region
                                    .min_dist(p)
                                    .partial_cmp(&self.nodes[b].region.min_dist(p))
                                    .unwrap_or(std::cmp::Ordering::Equal)
                            })
                        })?;
                    cur = next;
                }
            }
        }
    }

    /// Splits a full leaf into an internal node with two half leaves.
    fn split_leaf(&mut self, leaf_idx: usize, extra: Point) {
        let (region, block) = match &self.nodes[leaf_idx].kind {
            NodeKind::Leaf(b) => (self.nodes[leaf_idx].region, *b),
            NodeKind::Internal(_) => unreachable!("split_leaf called on an internal node"),
        };
        let mut pts: Vec<Point> = self.store.block(block).to_points();
        pts.push(extra);
        let split_x = region.width() >= region.height();
        if split_x {
            pts.sort_by(|a, b| a.x.partial_cmp(&b.x).unwrap_or(std::cmp::Ordering::Equal));
        } else {
            pts.sort_by(|a, b| a.y.partial_cmp(&b.y).unwrap_or(std::cmp::Ordering::Equal));
        }
        let half = pts.len() / 2;
        let boundary = if split_x { pts[half].x } else { pts[half].y };
        let (left_region, right_region) = if split_x {
            (
                Rect::new(region.min_x, region.min_y, boundary, region.max_y),
                Rect::new(boundary, region.min_y, region.max_x, region.max_y),
            )
        } else {
            (
                Rect::new(region.min_x, region.min_y, region.max_x, boundary),
                Rect::new(region.min_x, boundary, region.max_x, region.max_y),
            )
        };
        let right: Vec<Point> = pts.split_off(half);
        // Reuse the existing block for the left half.
        {
            let blk = self.store.block_mut(block);
            let ids: Vec<u64> = blk.ids().to_vec();
            for id in ids {
                blk.remove_by_id(id);
            }
            for p in &pts {
                blk.push(*p);
            }
        }
        let right_block = self.store.allocate();
        for p in &right {
            self.store.block_mut(right_block).push(*p);
        }
        let left_node = self.nodes.len();
        self.nodes.push(KdbNode {
            region: left_region,
            kind: NodeKind::Leaf(block),
        });
        let right_node = self.nodes.len();
        self.nodes.push(KdbNode {
            region: right_region,
            kind: NodeKind::Leaf(right_block),
        });
        self.nodes[leaf_idx].kind = NodeKind::Internal(vec![left_node, right_node]);
    }

    /// Reads a block as part of a query, charging the access and its
    /// candidates to the context.
    #[inline]
    fn read_block(&self, id: BlockId, cx: &mut QueryContext) -> &storage::Block {
        let block = self.store.block(id);
        cx.count_block_scan(block.len());
        block
    }

    /// Reads a K-D-B snapshot written by [`SpatialIndex::write_snapshot`].
    pub fn read_snapshot(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        let store = BlockStore::read_snapshot(r)?;
        r.begin_section(SECTION_KDB)?;
        let root = r.get_opt_usize()?;
        let height = r.get_usize()?;
        let n_points = r.get_usize()?;
        let n_nodes = r.get_len(33)?;
        let mut nodes = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            let region = r.get_rect()?;
            let kind = match r.get_u8()? {
                0 => {
                    let len = r.get_len(8)?;
                    let mut children = Vec::with_capacity(len);
                    for _ in 0..len {
                        let c = r.get_usize()?;
                        if c >= n_nodes {
                            return Err(PersistError::Corrupt(format!(
                                "KDB node child {c} out of range"
                            )));
                        }
                        children.push(c);
                    }
                    NodeKind::Internal(children)
                }
                1 => {
                    let b = r.get_usize()?;
                    if b >= store.len() {
                        return Err(PersistError::Corrupt(format!(
                            "KDB leaf references nonexistent block {b}"
                        )));
                    }
                    NodeKind::Leaf(b)
                }
                other => {
                    return Err(PersistError::Corrupt(format!(
                        "unknown KDB node kind byte {other}"
                    )))
                }
            };
            nodes.push(KdbNode { region, kind });
        }
        if root.is_some_and(|root| root >= n_nodes) {
            return Err(PersistError::Corrupt("KDB root out of range".into()));
        }
        r.end_section()?;
        Ok(Self {
            store,
            nodes,
            root,
            height,
            n_points,
        })
    }
}

impl SpatialIndex for KdbTree {
    fn name(&self) -> &'static str {
        "KDB"
    }

    fn len(&self) -> usize {
        self.n_points
    }

    fn point_query(&self, q: &Point, cx: &mut QueryContext) -> Option<Point> {
        // A point on a partition boundary is contained in the regions of two
        // sibling leaves, so the search must follow every containing child,
        // not just the first one.
        let root = self.root?;
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if !self.nodes[id].region.contains(q) {
                continue;
            }
            match &self.nodes[id].kind {
                NodeKind::Internal(children) => {
                    cx.count_node();
                    for &c in children {
                        if self.nodes[c].region.contains(q) {
                            stack.push(c);
                        }
                    }
                }
                NodeKind::Leaf(block) => {
                    if let Some(p) = self.read_block(*block, cx).find_at(q.x, q.y) {
                        return Some(p);
                    }
                }
            }
        }
        None
    }

    fn window_query_visit(
        &self,
        window: &Rect,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point),
    ) {
        let Some(root) = self.root else { return };
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if !self.nodes[id].region.intersects(window) {
                continue;
            }
            match &self.nodes[id].kind {
                NodeKind::Internal(children) => {
                    cx.count_node();
                    for &c in children {
                        if self.nodes[c].region.intersects(window) {
                            stack.push(c);
                        }
                    }
                }
                NodeKind::Leaf(block) => {
                    self.read_block(*block, cx)
                        .for_each_in_rect(window, |p| visit(&p));
                }
            }
        }
    }

    fn knn_query_visit(
        &self,
        q: &Point,
        k: usize,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point),
    ) {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        enum Item {
            Node(usize),
            Point(Point),
        }
        // Ordered by (distance, node-before-point, point id): equal-distance
        // points emit in id order, and a node at the same distance is
        // expanded first so any tied point inside it can still compete —
        // making kNN answers deterministic across runs and shards.
        struct Entry(f64, bool, u64, Item);
        impl PartialEq for Entry {
            fn eq(&self, other: &Self) -> bool {
                self.cmp(other) == std::cmp::Ordering::Equal
            }
        }
        impl Eq for Entry {}
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0
                    .partial_cmp(&other.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(self.1.cmp(&other.1))
                    .then(self.2.cmp(&other.2))
            }
        }
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }

        if k == 0 {
            return;
        }
        let Some(root) = self.root else { return };
        let mut found = 0usize;
        let mut heap = BinaryHeap::new();
        heap.push(Reverse(Entry(
            self.nodes[root].region.min_dist(q),
            false,
            0,
            Item::Node(root),
        )));
        while let Some(Reverse(Entry(_, _, _, item))) = heap.pop() {
            match item {
                Item::Point(p) => {
                    visit(&p);
                    found += 1;
                    if found == k {
                        break;
                    }
                }
                Item::Node(id) => match &self.nodes[id].kind {
                    NodeKind::Internal(children) => {
                        cx.count_node();
                        for &c in children {
                            heap.push(Reverse(Entry(
                                self.nodes[c].region.min_dist(q),
                                false,
                                0,
                                Item::Node(c),
                            )));
                        }
                    }
                    NodeKind::Leaf(block) => {
                        self.read_block(*block, cx).for_each_dist_sq(q, |p, d_sq| {
                            heap.push(Reverse(Entry(d_sq.sqrt(), true, p.id, Item::Point(p))));
                        });
                    }
                },
            }
        }
    }

    fn range_query_visit(
        &self,
        center: &Point,
        radius: f64,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point),
    ) {
        // MINDIST traversal over the tiling regions: tighter than the default
        // circumscribing-box window query.
        if !radius.is_finite() || radius < 0.0 {
            return;
        }
        let r_sq = radius * radius;
        let Some(root) = self.root else { return };
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if self.nodes[id].region.min_dist_sq(center) > r_sq {
                continue;
            }
            match &self.nodes[id].kind {
                NodeKind::Internal(children) => {
                    cx.count_node();
                    for &c in children {
                        if self.nodes[c].region.min_dist_sq(center) <= r_sq {
                            stack.push(c);
                        }
                    }
                }
                NodeKind::Leaf(block) => {
                    self.read_block(*block, cx)
                        .for_each_within(center, r_sq, |p, _| visit(&p));
                }
            }
        }
    }

    fn for_each_point(&self, visit: &mut dyn FnMut(&Point)) {
        for (_, block) in self.store.iter() {
            for p in block.iter_points() {
                visit(&p);
            }
        }
    }

    fn distance_join_probes(
        &self,
        probes: &[Point],
        radius: f64,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point, &Point),
    ) {
        // Region filter cascade: each directory region discards every probe
        // farther than the radius before descending, and each leaf block is
        // read once for all surviving probes.
        if !radius.is_finite() || radius < 0.0 || probes.is_empty() {
            return;
        }
        let r_sq = radius * radius;
        let Some(root) = self.root else { return };
        let mut root_kept = Vec::new();
        storage::kernels::probes_within(probes, &self.nodes[root].region, r_sq, &mut root_kept);
        if root_kept.is_empty() {
            return;
        }
        let mut stack = vec![(root, root_kept)];
        while let Some((id, cand)) = stack.pop() {
            match &self.nodes[id].kind {
                NodeKind::Internal(children) => {
                    cx.count_node();
                    for &c in children {
                        let mut kept = Vec::new();
                        storage::kernels::probes_within(
                            &cand,
                            &self.nodes[c].region,
                            r_sq,
                            &mut kept,
                        );
                        if !kept.is_empty() {
                            stack.push((c, kept));
                        }
                    }
                }
                NodeKind::Leaf(block) => {
                    let blk = self.read_block(*block, cx);
                    if let [q] = cand.as_slice() {
                        // Single surviving probe: the vectorized radius filter
                        // preserves the (point-major) visit order.
                        let q = *q;
                        blk.for_each_within(&q, r_sq, |p, _| visit(&p, &q));
                    } else {
                        for p in blk.iter_points() {
                            for q in &cand {
                                if p.dist_sq(q) <= r_sq {
                                    visit(&p, q);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    fn insert(&mut self, p: Point) {
        if self.root.is_none() {
            *self = KdbTree::build(vec![p], self.store.capacity());
            return;
        }
        let leaf = self.locate_leaf(&p).expect("non-empty tree");
        let block = match self.nodes[leaf].kind {
            NodeKind::Leaf(b) => b,
            NodeKind::Internal(_) => unreachable!("locate_leaf returns leaves"),
        };
        if self.store.block(block).is_full() {
            self.split_leaf(leaf, p);
        } else {
            self.store.block_mut(block).push(p);
        }
        self.n_points += 1;
    }

    fn delete(&mut self, p: &Point) -> bool {
        let Some(root) = self.root else { return false };
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if !self.nodes[id].region.contains(p) {
                continue;
            }
            match self.nodes[id].kind.clone() {
                NodeKind::Internal(children) => {
                    for c in children {
                        if self.nodes[c].region.contains(p) {
                            stack.push(c);
                        }
                    }
                }
                NodeKind::Leaf(block) => {
                    let found = self.store.block(block).find_at(p.x, p.y).map(|q| q.id);
                    if let Some(id_found) = found {
                        if id_found == p.id || p.id == 0 {
                            self.store.block_mut(block).remove_by_id(id_found);
                            self.n_points -= 1;
                            return true;
                        }
                    }
                }
            }
        }
        false
    }

    fn size_bytes(&self) -> usize {
        let dir: usize = self
            .nodes
            .iter()
            .map(|n| {
                std::mem::size_of::<Rect>()
                    + match &n.kind {
                        NodeKind::Internal(c) => c.len() * std::mem::size_of::<usize>(),
                        NodeKind::Leaf(_) => std::mem::size_of::<BlockId>(),
                    }
            })
            .sum();
        self.store.size_bytes() + dir
    }

    fn height(&self) -> usize {
        self.height
    }

    fn write_snapshot(&self, w: &mut SnapshotWriter) -> Result<(), PersistError> {
        self.store.write_snapshot(w);
        w.begin_section(SECTION_KDB);
        w.put_opt_usize(self.root);
        w.put_usize(self.height);
        w.put_usize(self.n_points);
        w.put_usize(self.nodes.len());
        for node in &self.nodes {
            w.put_rect(&node.region);
            match &node.kind {
                NodeKind::Internal(children) => {
                    w.put_u8(0);
                    w.put_usize(children.len());
                    for &c in children {
                        w.put_usize(c);
                    }
                }
                NodeKind::Leaf(block) => {
                    w.put_u8(1);
                    w.put_usize(*block);
                }
            }
        }
        w.end_section();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use common::brute_force;
    use datagen::{generate, Distribution};

    fn cx() -> QueryContext {
        QueryContext::new()
    }

    fn build_small(n: usize, dist: Distribution) -> (Vec<Point>, KdbTree) {
        let pts = generate(dist, n, 31);
        let tree = KdbTree::build(pts.clone(), 20);
        (pts, tree)
    }

    #[test]
    fn point_queries_find_every_point() {
        let (pts, tree) = build_small(1500, Distribution::Uniform);
        for p in &pts {
            assert_eq!(tree.point_query(p, &mut cx()).map(|f| f.id), Some(p.id));
        }
        assert!(tree
            .point_query(&Point::new(0.5000001, 0.4999999), &mut cx())
            .is_none());
    }

    #[test]
    fn leaf_regions_tile_the_space() {
        // Every unit-square location must land in exactly one leaf via
        // locate_leaf, and window queries over the whole space return all
        // points exactly once.
        let (pts, tree) = build_small(2000, Distribution::skewed_default());
        let all = tree.window_query(&Rect::unit(), &mut cx());
        assert_eq!(all.len(), pts.len());
        let mut ids: Vec<u64> = all.iter().map(|p| p.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), pts.len());
    }

    #[test]
    fn window_queries_are_exact() {
        let (pts, tree) = build_small(2500, Distribution::Normal);
        for w in [
            Rect::new(0.4, 0.4, 0.6, 0.6),
            Rect::new(0.0, 0.0, 0.3, 1.0),
            Rect::new(0.48, 0.01, 0.52, 0.99),
        ] {
            let mut truth: Vec<u64> = brute_force::window_query(&pts, &w)
                .iter()
                .map(|p| p.id)
                .collect();
            let mut got: Vec<u64> = tree
                .window_query(&w, &mut cx())
                .iter()
                .map(|p| p.id)
                .collect();
            truth.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, truth);
        }
    }

    #[test]
    fn knn_matches_brute_force_distances() {
        let (pts, tree) = build_small(1200, Distribution::TigerLike);
        for q in [Point::new(0.2, 0.2), Point::new(0.8, 0.5)] {
            for k in [1, 5, 25] {
                let truth = brute_force::knn_query(&pts, &q, k);
                let got = tree.knn_query(&q, k, &mut cx());
                assert_eq!(got.len(), k);
                for (t, g) in truth.iter().zip(&got) {
                    assert!((t.dist(&q) - g.dist(&q)).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn insert_splits_full_leaves_and_points_remain_findable() {
        let (pts, mut tree) = build_small(500, Distribution::Uniform);
        let nodes_before = tree.nodes.len();
        // Cram many points into one small area to force leaf splits.
        let extra: Vec<Point> = (0..300)
            .map(|i| {
                Point::with_id(
                    0.5 + 0.0001 * (i % 20) as f64,
                    0.5 + 0.0001 * (i / 20) as f64,
                    90_000 + i,
                )
            })
            .collect();
        for p in &extra {
            tree.insert(*p);
        }
        assert!(tree.nodes.len() > nodes_before, "no leaf was split");
        assert_eq!(tree.len(), 800);
        for p in extra.iter().chain(pts.iter().step_by(7)) {
            assert_eq!(tree.point_query(p, &mut cx()).map(|f| f.id), Some(p.id));
        }
    }

    #[test]
    fn delete_removes_points() {
        let (pts, mut tree) = build_small(600, Distribution::Uniform);
        assert!(tree.delete(&pts[42]));
        assert!(tree.point_query(&pts[42], &mut cx()).is_none());
        assert!(!tree.delete(&pts[42]));
        assert_eq!(tree.len(), 599);
    }

    #[test]
    fn empty_tree_and_bootstrap_insert() {
        let mut tree = KdbTree::build(vec![], 20);
        assert!(tree.point_query(&Point::new(0.5, 0.5), &mut cx()).is_none());
        assert!(tree.window_query(&Rect::unit(), &mut cx()).is_empty());
        assert!(tree
            .knn_query(&Point::new(0.5, 0.5), 4, &mut cx())
            .is_empty());
        tree.insert(Point::with_id(0.25, 0.75, 11));
        assert_eq!(tree.len(), 1);
        assert!(tree
            .point_query(&Point::new(0.25, 0.75), &mut cx())
            .is_some());
    }

    #[test]
    fn height_and_accounting_are_reported() {
        let (pts, tree) = build_small(5000, Distribution::Uniform);
        assert!(tree.height() >= 2);
        let mut c = cx();
        let _ = tree.point_query(&pts[0], &mut c);
        // At least the root node and one block are touched.
        assert!(c.stats.nodes_visited >= 1);
        assert!(c.stats.blocks_touched >= 1);
        assert!(tree.size_bytes() > 0);
        assert_eq!(tree.name(), "KDB");
    }
}
