//! ZM — the learned Z-order model baseline (Wang et al., MDM 2019), as
//! implemented by the RSMI paper's authors for their comparison: "a recursive
//! version of the model with three levels with 1, √(n/B²), and n/B²
//! sub-models each" (§6.1).
//!
//! The model maps a point's Z-curve value (computed on the raw coordinates,
//! *not* in rank space — that is exactly the difference RSMI addresses) to
//! the rank of the point among all points sorted by Z-value.  The rank
//! determines the data block (`rank / B`).

use common::{QueryContext, SpatialIndex};
use geom::{Point, Rect};
use mlp::{MlpConfig, ScaledRegressor};
use persist::{PersistError, SnapshotReader, SnapshotWriter};
use sfc::zcurve;
use storage::{BlockId, BlockStore};

/// Bits per dimension of the Z-curve grid.  With 20 bits per dimension the
/// 40-bit curve value is exactly representable in an `f64` mantissa, so the
/// learned models see no quantisation noise.
const Z_ORDER: u32 = 20;

/// Section tag of the ZM metadata (config and counts).
const SECTION_ZM_META: u32 = 0x5A01;
/// Section tag of the ZM model levels (trained weights, no retraining).
const SECTION_ZM_MODELS: u32 = 0x5A02;

/// Configuration of the ZM baseline.
#[derive(Debug, Clone, Copy)]
pub struct ZmConfig {
    /// Block capacity `B`.
    pub block_capacity: usize,
    /// Training epochs per sub-model.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Seed for deterministic training.
    pub seed: u64,
}

impl Default for ZmConfig {
    fn default() -> Self {
        Self {
            block_capacity: 100,
            epochs: 40,
            learning_rate: 0.15,
            seed: 42,
        }
    }
}

impl ZmConfig {
    /// Small configuration for tests.
    pub fn fast() -> Self {
        Self {
            block_capacity: 50,
            epochs: 25,
            learning_rate: 0.3,
            ..Self::default()
        }
    }
}

/// The three-level recursive Z-order model ("ZM" in the figures).
#[derive(Debug)]
pub struct ZOrderModel {
    config: ZmConfig,
    store: BlockStore,
    root: Option<ScaledRegressor>,
    level1: Vec<Option<ScaledRegressor>>,
    level2: Vec<Option<ScaledRegressor>>,
    /// Live point count (grows/shrinks with updates).
    n_points: usize,
    /// Point count at bulk-load time; model routing and rank clamping must
    /// use this fixed value so that predictions stay deterministic across
    /// later insertions and deletions.
    built_n: usize,
    model_count: usize,
}

impl ZOrderModel {
    /// Bulk-loads the ZM index.
    pub fn build(points: Vec<Point>, config: ZmConfig) -> Self {
        let n = points.len();
        let mut store = BlockStore::new(config.block_capacity);
        if n == 0 {
            return Self {
                config,
                store,
                root: None,
                level1: Vec::new(),
                level2: Vec::new(),
                n_points: 0,
                built_n: 0,
                model_count: 0,
            };
        }
        // Sort by Z-value and pack into blocks.
        let mut keyed: Vec<(u64, Point)> = points
            .iter()
            .map(|p| (zcurve::encode_unit(p.x, p.y, Z_ORDER), *p))
            .collect();
        keyed.sort_by_key(|(z, p)| (*z, p.id));
        let ordered: Vec<Point> = keyed.iter().map(|(_, p)| *p).collect();
        store.pack(&ordered);

        let keys: Vec<Vec<f64>> = keyed.iter().map(|(z, _)| vec![*z as f64]).collect();
        let ranks: Vec<u64> = (0..n as u64).collect();

        let b2 = (config.block_capacity * config.block_capacity) as f64;
        let m1 = ((n as f64 / b2).sqrt().ceil() as usize).max(1);
        let m2 = ((n as f64 / b2).ceil() as usize).max(1);

        let mlp_config = |seed_offset: u64| MlpConfig {
            input_dim: 1,
            hidden: 16,
            learning_rate: config.learning_rate,
            epochs: config.epochs,
            batch_size: 32,
            seed: config.seed.wrapping_add(seed_offset),
        };

        let mut model_count = 0usize;
        // Level 0: one model over the whole key space.
        let root = ScaledRegressor::fit(mlp_config(0), &keys, &ranks);
        model_count += 1;

        // Level 1: assign each point by the root's predicted rank.
        let mut groups1: Vec<Vec<usize>> = vec![Vec::new(); m1];
        for (i, key) in keys.iter().enumerate() {
            let pred = root.predict(key);
            let idx = ((pred as usize * m1) / n).min(m1 - 1);
            groups1[idx].push(i);
        }
        let mut level1: Vec<Option<ScaledRegressor>> = Vec::with_capacity(m1);
        for (g, idxs) in groups1.iter().enumerate() {
            if idxs.is_empty() {
                level1.push(None);
                continue;
            }
            let sub_keys: Vec<Vec<f64>> = idxs.iter().map(|&i| keys[i].clone()).collect();
            let sub_ranks: Vec<u64> = idxs.iter().map(|&i| ranks[i]).collect();
            level1.push(Some(ScaledRegressor::fit(
                mlp_config(1 + g as u64),
                &sub_keys,
                &sub_ranks,
            )));
            model_count += 1;
        }

        // Level 2: assign by the level-1 predictions.
        let mut groups2: Vec<Vec<usize>> = vec![Vec::new(); m2];
        for (g, idxs) in groups1.iter().enumerate() {
            let model = level1[g].as_ref().expect("group non-empty implies model");
            for &i in idxs {
                let pred = model.predict(&keys[i]);
                let idx = ((pred as usize * m2) / n).min(m2 - 1);
                groups2[idx].push(i);
            }
        }
        let mut level2: Vec<Option<ScaledRegressor>> = Vec::with_capacity(m2);
        for (g, idxs) in groups2.iter().enumerate() {
            if idxs.is_empty() {
                level2.push(None);
                continue;
            }
            let sub_keys: Vec<Vec<f64>> = idxs.iter().map(|&i| keys[i].clone()).collect();
            let sub_ranks: Vec<u64> = idxs.iter().map(|&i| ranks[i]).collect();
            level2.push(Some(ScaledRegressor::fit(
                mlp_config(1000 + g as u64),
                &sub_keys,
                &sub_ranks,
            )));
            model_count += 1;
        }

        Self {
            config,
            store,
            root: Some(root),
            level1,
            level2,
            n_points: n,
            built_n: n,
            model_count,
        }
    }

    /// The number of learned sub-models (1 + m1 + m2 minus empty slots).
    pub fn model_count(&self) -> usize {
        self.model_count
    }

    /// Maximum error bounds over the leaf-level models, in *blocks*
    /// (reported in Table 4 of the paper).
    pub fn error_bounds_blocks(&self) -> (u64, u64) {
        let b = self.config.block_capacity as u64;
        let mut below = 0;
        let mut above = 0;
        for m in self.level2.iter().flatten() {
            below = below.max(m.err_below().div_ceil(b));
            above = above.max(m.err_above().div_ceil(b));
        }
        (below, above)
    }

    fn nearest_model(models: &[Option<ScaledRegressor>], idx: usize) -> Option<&ScaledRegressor> {
        if let Some(Some(m)) = models.get(idx) {
            return Some(m);
        }
        for offset in 1..models.len().max(1) {
            if idx >= offset {
                if let Some(m) = &models[idx - offset] {
                    return Some(m);
                }
            }
            if idx + offset < models.len() {
                if let Some(m) = &models[idx + offset] {
                    return Some(m);
                }
            }
        }
        None
    }

    /// Predicted rank range `[lo, hi]` for a Z-value, covering the leaf
    /// model's error bounds.  Charges one node visit per sub-model invoked.
    fn predicted_rank_range(&self, z: u64, cx: &mut QueryContext) -> Option<(u64, u64)> {
        let root = self.root.as_ref()?;
        let key = [z as f64];
        // Use the bulk-load cardinality, not the live count: routing must be
        // identical for the same key before and after updates, otherwise a
        // point inserted earlier could fall outside a later scan range.
        let n = self.built_n;
        cx.count_node();
        let pred0 = root.predict(&key);
        let idx1 = ((pred0 as usize * self.level1.len()) / n).min(self.level1.len() - 1);
        let m1 = Self::nearest_model(&self.level1, idx1)?;
        cx.count_node();
        let pred1 = m1.predict(&key);
        let idx2 = ((pred1 as usize * self.level2.len()) / n).min(self.level2.len() - 1);
        let m2 = Self::nearest_model(&self.level2, idx2)?;
        cx.count_node();
        let pred2 = m2.predict(&key);
        let lo = pred2.saturating_sub(m2.err_above());
        let hi = (pred2 + m2.err_below()).min(n as u64 - 1);
        Some((lo, hi))
    }

    /// Predicted block range for a Z-value.
    fn predicted_block_range(&self, z: u64, cx: &mut QueryContext) -> Option<(BlockId, BlockId)> {
        let (lo, hi) = self.predicted_rank_range(z, cx)?;
        let b = self.config.block_capacity as u64;
        let max_block = self.store.len().saturating_sub(1);
        Some((
            ((lo / b) as usize).min(max_block),
            ((hi / b) as usize).min(max_block),
        ))
    }

    /// Reads a block as part of a query, charging the access and its
    /// candidates to the context.
    #[inline]
    fn read_block(&self, id: BlockId, cx: &mut QueryContext) -> &storage::Block {
        let block = self.store.block(id);
        cx.count_block_scan(block.len());
        block
    }

    /// Scans blocks `begin..=end` (following the chain, including overflow
    /// blocks), charging each read to `cx` and applying `f` to each block.
    fn scan_chain(
        &self,
        begin: BlockId,
        end: BlockId,
        cx: &mut QueryContext,
        mut f: impl FnMut(&storage::Block),
    ) {
        let mut cur = Some(begin);
        let mut guard = self.store.len() + 1;
        while let Some(id) = cur {
            let block = self.read_block(id, cx);
            f(block);
            if id == end {
                let mut next = block.next();
                while let Some(nb) = next {
                    if !self.store.block(nb).is_overflow() {
                        break;
                    }
                    let ov = self.read_block(nb, cx);
                    f(ov);
                    next = ov.next();
                }
                break;
            }
            cur = block.next();
            guard -= 1;
            if guard == 0 {
                break;
            }
        }
    }

    /// Read access to the underlying block store.
    pub fn block_store(&self) -> &BlockStore {
        &self.store
    }

    /// Reads a ZM snapshot written by [`SpatialIndex::write_snapshot`].
    pub fn read_snapshot(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        r.begin_section(SECTION_ZM_META)?;
        let config = ZmConfig {
            block_capacity: r.get_usize()?,
            epochs: r.get_usize()?,
            learning_rate: r.get_f64()?,
            seed: r.get_u64()?,
        };
        let n_points = r.get_usize()?;
        let built_n = r.get_usize()?;
        let model_count = r.get_usize()?;
        r.end_section()?;
        let store = BlockStore::read_snapshot(r)?;
        if store.capacity() != config.block_capacity {
            return Err(PersistError::Corrupt(
                "ZM store capacity differs from its config".into(),
            ));
        }
        r.begin_section(SECTION_ZM_MODELS)?;
        let root = decode_opt_model(r)?;
        let level1 = decode_model_level(r)?;
        let level2 = decode_model_level(r)?;
        r.end_section()?;
        Ok(Self {
            config,
            store,
            root,
            level1,
            level2,
            n_points,
            built_n,
            model_count,
        })
    }
}

fn encode_opt_model(w: &mut SnapshotWriter, model: Option<&ScaledRegressor>) {
    match model {
        Some(m) => {
            w.put_bool(true);
            m.encode(w);
        }
        None => w.put_bool(false),
    }
}

fn decode_opt_model(r: &mut SnapshotReader<'_>) -> Result<Option<ScaledRegressor>, PersistError> {
    if r.get_bool()? {
        Ok(Some(ScaledRegressor::decode(r)?))
    } else {
        Ok(None)
    }
}

fn encode_model_level(w: &mut SnapshotWriter, level: &[Option<ScaledRegressor>]) {
    w.put_usize(level.len());
    for model in level {
        encode_opt_model(w, model.as_ref());
    }
}

fn decode_model_level(
    r: &mut SnapshotReader<'_>,
) -> Result<Vec<Option<ScaledRegressor>>, PersistError> {
    let n = r.get_len(1)?;
    let mut level = Vec::with_capacity(n);
    for _ in 0..n {
        level.push(decode_opt_model(r)?);
    }
    Ok(level)
}

impl SpatialIndex for ZOrderModel {
    fn name(&self) -> &'static str {
        "ZM"
    }

    fn len(&self) -> usize {
        self.n_points
    }

    fn point_query(&self, q: &Point, cx: &mut QueryContext) -> Option<Point> {
        let z = zcurve::encode_unit(q.x, q.y, Z_ORDER);
        let (lo, hi) = self.predicted_block_range(z, cx)?;
        let mut found = None;
        self.scan_chain(lo, hi, cx, |block| {
            if found.is_none() {
                if let Some(p) = block.find_at(q.x, q.y) {
                    found = Some(p);
                }
            }
        });
        found
    }

    fn window_query_visit(
        &self,
        window: &Rect,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point),
    ) {
        if self.n_points == 0 {
            return;
        }
        // For the Z-curve the minimum and maximum curve values inside the
        // window are attained at its bottom-left and top-right corners.
        let zl = zcurve::encode_unit(window.min_x, window.min_y, Z_ORDER);
        let zh = zcurve::encode_unit(window.max_x, window.max_y, Z_ORDER);
        let Some((lo, _)) = self.predicted_block_range(zl, cx) else {
            return;
        };
        let Some((_, hi)) = self.predicted_block_range(zh, cx) else {
            return;
        };
        let (lo, hi) = (lo.min(hi), hi.max(lo));
        self.scan_chain(lo, hi, cx, |block| {
            block.for_each_in_rect(window, |p| visit(&p));
        });
    }

    fn knn_query_visit(
        &self,
        q: &Point,
        k: usize,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point),
    ) {
        // The ZM paper has no kNN algorithm; the RSMI authors run their own
        // search-region-expansion algorithm on top of ZM (§6.2.4).  The skew
        // parameters default to 1 since ZM learns no marginal CDFs.
        if k == 0 || self.n_points == 0 {
            return;
        }
        let k_eff = k.min(self.n_points);
        let base = (k_eff as f64 / self.n_points as f64).sqrt();
        let mut width = base;
        let mut height = base;
        let mut best: Vec<(f64, Point)> = Vec::with_capacity(k_eff + 1);
        loop {
            let window = Rect::centered(q.x, q.y, width, height);
            best.clear();
            let mut candidates = Vec::new();
            self.window_query_visit(&window, cx, &mut |p| candidates.push(*p));
            for p in candidates {
                let d = p.dist(q);
                let pos = best
                    .binary_search_by(|(bd, bp)| {
                        bd.partial_cmp(&d)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(bp.id.cmp(&p.id))
                    })
                    .unwrap_or_else(|e| e);
                if pos < k_eff {
                    best.insert(pos, (d, p));
                    if best.len() > k_eff {
                        best.pop();
                    }
                }
            }
            let covers_space = width >= 2.0 && height >= 2.0;
            if best.len() < k_eff {
                if covers_space {
                    // Guarantee k results: fall back to scanning all blocks.
                    best.clear();
                    for (id, _) in self.store.iter() {
                        let block = self.read_block(id, cx);
                        block.for_each_dist_sq(q, |p, d_sq| {
                            let d = d_sq.sqrt();
                            let pos = best
                                .binary_search_by(|(bd, bp)| {
                                    bd.partial_cmp(&d)
                                        .unwrap_or(std::cmp::Ordering::Equal)
                                        .then(bp.id.cmp(&p.id))
                                })
                                .unwrap_or_else(|e| e);
                            if pos < k_eff {
                                best.insert(pos, (d, p));
                                if best.len() > k_eff {
                                    best.pop();
                                }
                            }
                        });
                    }
                    break;
                }
                width = (width * 2.0).min(2.0);
                height = (height * 2.0).min(2.0);
                continue;
            }
            let dk = best[k_eff - 1].0;
            if dk > (width * width + height * height).sqrt() / 2.0 && !covers_space {
                width = (2.0 * dk).min(2.0);
                height = (2.0 * dk).min(2.0);
                continue;
            }
            break;
        }
        for (_, p) in &best {
            visit(p);
        }
    }

    fn range_query_visit(
        &self,
        center: &Point,
        radius: f64,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point),
    ) {
        // ZM's learned error bounds only hold for *indexed* keys, so a
        // model-predicted scan range over a query circle cannot guarantee
        // coverage (that is exactly why its window answers are approximate).
        // Distance-range answers are required to be exact for every family,
        // so ZM falls back to a bounded sweep of the curve-ordered store,
        // pruning each block by its MBR's MINDIST.  The MBR test reads the
        // block, so the block access is charged even when it prunes
        // (matching the RSMIa convention); candidates are only charged for
        // blocks that survive.
        if !radius.is_finite() || radius < 0.0 {
            return;
        }
        let r_sq = radius * radius;
        for (_, block) in self.store.iter() {
            cx.count_block();
            if block.is_empty() || block.mbr().min_dist_sq(center) > r_sq {
                continue;
            }
            cx.count_candidates(block.len());
            block.for_each_within(center, r_sq, |p, _| visit(&p));
        }
    }

    fn for_each_point(&self, visit: &mut dyn FnMut(&Point)) {
        for (_, block) in self.store.iter() {
            for p in block.iter_points() {
                visit(&p);
            }
        }
    }

    fn distance_join_probes(
        &self,
        probes: &[Point],
        radius: f64,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point, &Point),
    ) {
        // One sweep of the store joins every probe at once: each block's MBR
        // discards the probes beyond the radius, and the block's points are
        // read exactly once — instead of one full-store range probe per
        // point of the other index.
        if !radius.is_finite() || radius < 0.0 || probes.is_empty() {
            return;
        }
        let r_sq = radius * radius;
        let mut kept: Vec<Point> = Vec::new();
        for (_, block) in self.store.iter() {
            cx.count_block();
            if block.is_empty() {
                continue;
            }
            let mbr = block.mbr();
            storage::kernels::probes_within(probes, &mbr, r_sq, &mut kept);
            if kept.is_empty() {
                continue;
            }
            cx.count_candidates(block.len());
            if let [q] = kept.as_slice() {
                // Single surviving probe: the vectorized radius filter
                // preserves the (point-major) visit order.
                let q = *q;
                block.for_each_within(&q, r_sq, |p, _| visit(&p, &q));
            } else {
                for p in block.iter_points() {
                    for q in &kept {
                        if p.dist_sq(q) <= r_sq {
                            visit(&p, q);
                        }
                    }
                }
            }
        }
    }

    fn insert(&mut self, p: Point) {
        if self.n_points == 0 {
            *self = ZOrderModel::build(vec![p], self.config);
            return;
        }
        let z = zcurve::encode_unit(p.x, p.y, Z_ORDER);
        let mut scratch = QueryContext::new();
        let (lo, hi) = self
            .predicted_block_range(z, &mut scratch)
            .expect("non-empty index has models");
        // Insert into the predicted block (middle of the range), or the
        // first block of its overflow chain that has space, or a new
        // overflow block.
        let target_base = (lo + hi) / 2;
        let chain = self.store.overflow_chain(target_base);
        let mut target = None;
        for id in &chain {
            if !self.store.block(*id).is_full() {
                target = Some(*id);
                break;
            }
        }
        let target = target.unwrap_or_else(|| {
            self.store
                .insert_overflow_after(*chain.last().expect("chain non-empty"))
        });
        self.store.block_mut(target).push(p);
        self.n_points += 1;
    }

    fn delete(&mut self, p: &Point) -> bool {
        if self.n_points == 0 {
            return false;
        }
        let z = zcurve::encode_unit(p.x, p.y, Z_ORDER);
        let mut scratch = QueryContext::new();
        let Some((lo, hi)) = self.predicted_block_range(z, &mut scratch) else {
            return false;
        };
        // Search the predicted chain explicitly (instead of via `scan_chain`)
        // so the block can be mutated once the victim is located.
        let mut victim: Option<(BlockId, u64)> = None;
        let mut cur = Some(lo);
        let mut guard = self.store.len() + 1;
        while let Some(id) = cur {
            let block = self.store.block(id);
            if let Some(found) = block.find_at(p.x, p.y) {
                if found.id == p.id || p.id == 0 {
                    victim = Some((id, found.id));
                    break;
                }
            }
            if id == hi {
                let mut next = block.next();
                while let Some(nb) = next {
                    if !self.store.block(nb).is_overflow() {
                        break;
                    }
                    let ov = self.store.block(nb);
                    if let Some(found) = ov.find_at(p.x, p.y) {
                        if found.id == p.id || p.id == 0 {
                            victim = Some((nb, found.id));
                            break;
                        }
                    }
                    next = ov.next();
                }
                break;
            }
            cur = block.next();
            guard -= 1;
            if guard == 0 {
                break;
            }
        }
        if let Some((block_id, point_id)) = victim {
            self.store.block_mut(block_id).remove_by_id(point_id);
            self.n_points -= 1;
            true
        } else {
            false
        }
    }

    fn size_bytes(&self) -> usize {
        let models: usize = self.root.as_ref().map(|m| m.size_bytes()).unwrap_or(0)
            + self
                .level1
                .iter()
                .flatten()
                .map(ScaledRegressor::size_bytes)
                .sum::<usize>()
            + self
                .level2
                .iter()
                .flatten()
                .map(ScaledRegressor::size_bytes)
                .sum::<usize>();
        self.store.size_bytes() + models
    }

    fn height(&self) -> usize {
        3
    }

    fn model_count(&self) -> usize {
        self.model_count
    }

    fn model_error_bounds(&self) -> Option<(u64, u64)> {
        Some(self.error_bounds_blocks())
    }

    fn write_snapshot(&self, w: &mut SnapshotWriter) -> Result<(), PersistError> {
        w.begin_section(SECTION_ZM_META);
        w.put_usize(self.config.block_capacity);
        w.put_usize(self.config.epochs);
        w.put_f64(self.config.learning_rate);
        w.put_u64(self.config.seed);
        w.put_usize(self.n_points);
        w.put_usize(self.built_n);
        w.put_usize(self.model_count);
        w.end_section();
        self.store.write_snapshot(w);
        w.begin_section(SECTION_ZM_MODELS);
        encode_opt_model(w, self.root.as_ref());
        encode_model_level(w, &self.level1);
        encode_model_level(w, &self.level2);
        w.end_section();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use common::{brute_force, metrics};
    use datagen::{generate, Distribution};

    fn cx() -> QueryContext {
        QueryContext::new()
    }

    fn build_small(n: usize) -> (Vec<Point>, ZOrderModel) {
        let pts = generate(Distribution::Uniform, n, 17);
        let zm = ZOrderModel::build(pts.clone(), ZmConfig::fast());
        (pts, zm)
    }

    #[test]
    fn point_queries_find_every_point() {
        let (pts, zm) = build_small(1200);
        for p in &pts {
            let found = zm.point_query(p, &mut cx());
            assert_eq!(found.map(|f| f.id), Some(p.id), "lost {p:?}");
        }
    }

    #[test]
    fn point_query_misses_absent_points() {
        let (_, zm) = build_small(500);
        assert!(zm
            .point_query(&Point::new(0.111111, 0.222222), &mut cx())
            .is_none());
    }

    #[test]
    fn window_queries_have_no_false_positives_and_reasonable_recall() {
        let (pts, zm) = build_small(2000);
        let mut recalls = Vec::new();
        for w in [
            Rect::new(0.1, 0.1, 0.3, 0.3),
            Rect::new(0.45, 0.45, 0.55, 0.6),
            Rect::new(0.7, 0.2, 0.95, 0.4),
        ] {
            let truth = brute_force::window_query(&pts, &w);
            let got = zm.window_query(&w, &mut cx());
            assert_eq!(metrics::false_positive_rate(&got, &truth), 0.0);
            recalls.push(metrics::recall(&got, &truth));
        }
        assert!(metrics::mean(&recalls) > 0.8, "recall {recalls:?}");
    }

    #[test]
    fn knn_returns_k_points_with_decent_recall() {
        let (pts, zm) = build_small(2000);
        let q = Point::new(0.4, 0.6);
        let k = 10;
        let got = zm.knn_query(&q, k, &mut cx());
        assert_eq!(got.len(), k);
        let truth = brute_force::knn_query(&pts, &q, k);
        assert!(metrics::knn_recall(&got, &truth, &q, k) > 0.7);
    }

    #[test]
    fn insert_and_delete_round_trip() {
        let (_, mut zm) = build_small(800);
        let p = Point::with_id(0.31415, 0.27182, 777_777);
        zm.insert(p);
        assert_eq!(zm.len(), 801);
        assert_eq!(zm.point_query(&p, &mut cx()).map(|f| f.id), Some(p.id));
        assert!(zm.delete(&p));
        assert!(zm.point_query(&p, &mut cx()).is_none());
        assert_eq!(zm.len(), 800);
    }

    #[test]
    fn error_bounds_and_model_count_are_reported() {
        let (_, zm) = build_small(3000);
        assert!(zm.model_count() >= 3);
        let (below, above) = zm.error_bounds_blocks();
        // The Z-order model on raw coordinates has non-trivial error bounds.
        assert!(below + above > 0);
        assert_eq!(zm.height(), 3);
        assert_eq!(zm.name(), "ZM");
        assert!(zm.size_bytes() > 0);
    }

    #[test]
    fn routing_is_stable_across_many_updates() {
        // Regression test: model routing must use the bulk-load cardinality,
        // not the live count, or points inserted earlier become unreachable
        // as the count drifts.
        let (pts, mut zm) = build_small(1000);
        let inserted: Vec<Point> = (0..300)
            .map(|i| {
                let base = pts[(i * 3) % pts.len()];
                Point::with_id((base.x + 1e-5).min(1.0), base.y, 500_000 + i as u64)
            })
            .collect();
        for (i, p) in inserted.iter().enumerate() {
            zm.insert(*p);
            // Interleave deletions so the live count also shrinks.
            if i % 4 == 0 {
                assert!(zm.delete(&pts[i]), "delete of original point {i} failed");
            }
        }
        for p in &inserted {
            assert_eq!(
                zm.point_query(p, &mut cx()).map(|f| f.id),
                Some(p.id),
                "lost {p:?}"
            );
        }
    }

    #[test]
    fn range_queries_are_exact_despite_approximate_windows() {
        let (pts, mut zm) = build_small(1500);
        // Updates must stay visible to the sweep.
        let extra = Point::with_id(0.404, 0.606, 800_000);
        zm.insert(extra);
        let mut all = pts.clone();
        all.push(extra);
        for (center, r) in [(Point::new(0.4, 0.6), 0.05), (Point::new(0.9, 0.1), 0.15)] {
            let mut truth: Vec<u64> = brute_force::range_query(&all, &center, r)
                .iter()
                .map(|p| p.id)
                .collect();
            let mut got: Vec<u64> = zm
                .range_query(&center, r, &mut cx())
                .iter()
                .map(|p| p.id)
                .collect();
            truth.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, truth, "center {center:?} r {r}");
        }
        // The join worker agrees with the nested-loop oracle.
        let probes: Vec<Point> = pts.iter().step_by(37).copied().collect();
        let mut got: Vec<(u64, u64)> = Vec::new();
        zm.distance_join_probes(&probes, 0.02, &mut cx(), &mut |p, q| got.push((p.id, q.id)));
        let mut truth: Vec<(u64, u64)> = brute_force::distance_join(&all, &probes, 0.02)
            .iter()
            .map(|(p, q)| (p.id, q.id))
            .collect();
        got.sort_unstable();
        truth.sort_unstable();
        assert_eq!(got, truth);
        let mut n = 0;
        zm.for_each_point(&mut |_| n += 1);
        assert_eq!(n, all.len());
    }

    #[test]
    fn empty_zm_handles_queries_and_bootstrap_insert() {
        let mut zm = ZOrderModel::build(vec![], ZmConfig::fast());
        assert!(zm.point_query(&Point::new(0.5, 0.5), &mut cx()).is_none());
        assert!(zm.window_query(&Rect::unit(), &mut cx()).is_empty());
        assert!(zm.knn_query(&Point::new(0.5, 0.5), 3, &mut cx()).is_empty());
        zm.insert(Point::with_id(0.5, 0.5, 1));
        assert_eq!(zm.len(), 1);
        assert!(zm.point_query(&Point::new(0.5, 0.5), &mut cx()).is_some());
    }
}
