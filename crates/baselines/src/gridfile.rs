//! Grid File baseline (Nievergelt et al.), as configured in §6.1 of the
//! paper: a regular `√(n/B) x √(n/B)` grid over the data space, one block's
//! worth of points per cell under a uniform distribution.  A cell table maps
//! every cell to the list of blocks storing its points.

use common::{QueryContext, SpatialIndex};
use geom::{Point, Rect};
use persist::{PersistError, SnapshotReader, SnapshotWriter};
use storage::{BlockId, BlockStore};

/// Section tag of the grid directory (the cell table).
const SECTION_GRID: u32 = 0x4701;

/// Grid File index ("Grid" in the paper's figures).
#[derive(Debug)]
pub struct GridFile {
    store: BlockStore,
    /// Blocks of each cell, row-major (`cell = row * side + col`).
    cells: Vec<Vec<BlockId>>,
    /// Number of columns (= rows) of the grid.
    side: usize,
    n_points: usize,
}

impl GridFile {
    /// Bulk-loads a Grid File with block capacity `block_capacity`.
    pub fn build(points: Vec<Point>, block_capacity: usize) -> Self {
        let n = points.len();
        // √(n / B) cells per dimension (at least 1).
        let side = (((n as f64 / block_capacity as f64).sqrt()).ceil() as usize).max(1);
        let mut per_cell: Vec<Vec<Point>> = vec![Vec::new(); side * side];
        for p in &points {
            per_cell[Self::cell_of(side, p)].push(*p);
        }
        let mut store = BlockStore::new(block_capacity);
        let mut cells = vec![Vec::new(); side * side];
        for (cell, pts) in per_cell.into_iter().enumerate() {
            if pts.is_empty() {
                continue;
            }
            let range = store.pack(&pts);
            cells[cell] = range.collect();
        }
        Self {
            store,
            cells,
            side,
            n_points: n,
        }
    }

    #[inline]
    fn cell_of(side: usize, p: &Point) -> usize {
        let col = ((p.x * side as f64) as usize).min(side - 1);
        let row = ((p.y * side as f64) as usize).min(side - 1);
        row * side + col
    }

    #[inline]
    fn cell_rect(&self, cell: usize) -> Rect {
        let col = cell % self.side;
        let row = cell / self.side;
        let w = 1.0 / self.side as f64;
        Rect::new(
            col as f64 * w,
            row as f64 * w,
            (col + 1) as f64 * w,
            (row + 1) as f64 * w,
        )
    }

    /// Cells whose extent intersects the window.
    fn cells_in_window(&self, window: &Rect) -> Vec<usize> {
        let side = self.side;
        let clamp = |v: f64| ((v * side as f64) as isize).clamp(0, side as isize - 1) as usize;
        let (c0, c1) = (clamp(window.min_x), clamp(window.max_x));
        let (r0, r1) = (clamp(window.min_y), clamp(window.max_y));
        let mut out = Vec::with_capacity((c1 - c0 + 1) * (r1 - r0 + 1));
        for row in r0..=r1 {
            for col in c0..=c1 {
                out.push(row * side + col);
            }
        }
        out
    }

    /// Grid resolution (cells per dimension).
    pub fn grid_side(&self) -> usize {
        self.side
    }

    /// Reads a block as part of a query, charging the access and its
    /// candidates to the context.
    #[inline]
    fn read_block(&self, id: BlockId, cx: &mut QueryContext) -> &storage::Block {
        let block = self.store.block(id);
        cx.count_block_scan(block.len());
        block
    }

    /// Reads a Grid File snapshot written by
    /// [`SpatialIndex::write_snapshot`].
    pub fn read_snapshot(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        let store = BlockStore::read_snapshot(r)?;
        r.begin_section(SECTION_GRID)?;
        let side = r.get_usize()?;
        let n_points = r.get_usize()?;
        let n_cells = r.get_len(8)?;
        if side == 0 || side.checked_mul(side) != Some(n_cells) {
            return Err(PersistError::Corrupt(format!(
                "grid of side {side} with {n_cells} cells"
            )));
        }
        let mut cells = Vec::with_capacity(n_cells);
        for _ in 0..n_cells {
            let len = r.get_len(8)?;
            let mut blocks = Vec::with_capacity(len);
            for _ in 0..len {
                let b = r.get_usize()?;
                if b >= store.len() {
                    return Err(PersistError::Corrupt(format!(
                        "cell references nonexistent block {b}"
                    )));
                }
                blocks.push(b);
            }
            cells.push(blocks);
        }
        r.end_section()?;
        Ok(Self {
            store,
            cells,
            side,
            n_points,
        })
    }
}

impl SpatialIndex for GridFile {
    fn name(&self) -> &'static str {
        "Grid"
    }

    fn len(&self) -> usize {
        self.n_points
    }

    fn point_query(&self, q: &Point, cx: &mut QueryContext) -> Option<Point> {
        let cell = Self::cell_of(self.side, q);
        for &b in &self.cells[cell] {
            if let Some(p) = self.read_block(b, cx).find_at(q.x, q.y) {
                return Some(p);
            }
        }
        None
    }

    fn window_query_visit(
        &self,
        window: &Rect,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point),
    ) {
        for cell in self.cells_in_window(window) {
            for &b in &self.cells[cell] {
                self.read_block(b, cx)
                    .for_each_in_rect(window, |p| visit(&p));
            }
        }
    }

    fn knn_query_visit(
        &self,
        q: &Point,
        k: usize,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point),
    ) {
        if k == 0 || self.n_points == 0 {
            return;
        }
        let k_eff = k.min(self.n_points);
        let mut best: Vec<(f64, Point)> = Vec::with_capacity(k_eff + 1);
        let qcell = Self::cell_of(self.side, q);
        let (qcol, qrow) = (qcell % self.side, qcell / self.side);
        let cell_width = 1.0 / self.side as f64;

        // Expand ring by ring around the query cell; stop when the closest
        // possible point in the next unexplored ring cannot improve the k-th
        // distance.
        let max_ring = self.side; // enough to cover the whole grid
        for ring in 0..=max_ring {
            if best.len() >= k_eff {
                // Minimum distance to any cell in this ring.
                let ring_dist = (ring.saturating_sub(1)) as f64 * cell_width;
                if ring_dist > best[k_eff - 1].0 {
                    break;
                }
            }
            let mut visit_cell = |col: isize, row: isize, cx: &mut QueryContext| {
                if col < 0 || row < 0 || col >= self.side as isize || row >= self.side as isize {
                    return;
                }
                let cell = row as usize * self.side + col as usize;
                if best.len() >= k_eff && self.cell_rect(cell).min_dist(q) > best[k_eff - 1].0 {
                    return;
                }
                for &b in &self.cells[cell] {
                    self.read_block(b, cx).for_each_dist_sq(q, |p, d_sq| {
                        let d = d_sq.sqrt();
                        // (distance, id) acceptance so distance ties resolve
                        // to the smaller id, matching brute force and the
                        // sharded engine's k-way merge.
                        if best.len() < k_eff
                            || (d, p.id) < (best[k_eff - 1].0, best[k_eff - 1].1.id)
                        {
                            let pos = best
                                .binary_search_by(|(bd, bp)| {
                                    bd.partial_cmp(&d)
                                        .unwrap_or(std::cmp::Ordering::Equal)
                                        .then(bp.id.cmp(&p.id))
                                })
                                .unwrap_or_else(|e| e);
                            best.insert(pos, (d, p));
                            if best.len() > k_eff {
                                best.pop();
                            }
                        }
                    });
                }
            };
            if ring == 0 {
                visit_cell(qcol as isize, qrow as isize, cx);
                continue;
            }
            let r = ring as isize;
            let (qc, qr) = (qcol as isize, qrow as isize);
            for d in -r..=r {
                visit_cell(qc + d, qr - r, cx);
                visit_cell(qc + d, qr + r, cx);
                if d > -r && d < r {
                    visit_cell(qc - r, qr + d, cx);
                    visit_cell(qc + r, qr + d, cx);
                }
            }
        }
        for (_, p) in &best {
            visit(p);
        }
    }

    fn for_each_point(&self, visit: &mut dyn FnMut(&Point)) {
        for (_, block) in self.store.iter() {
            for p in block.iter_points() {
                visit(&p);
            }
        }
    }

    fn distance_join_probes(
        &self,
        probes: &[Point],
        radius: f64,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point, &Point),
    ) {
        // Cell-level filter cascade: each occupied cell discards every probe
        // farther than the radius from its extent, then its blocks are read
        // once and paired against the survivors — instead of one bounding-box
        // window probe per point of the other index.
        if !radius.is_finite() || radius < 0.0 || probes.is_empty() {
            return;
        }
        let r_sq = radius * radius;
        let mut kept: Vec<Point> = Vec::new();
        for (cell, blocks) in self.cells.iter().enumerate() {
            if blocks.is_empty() {
                continue;
            }
            let rect = self.cell_rect(cell);
            storage::kernels::probes_within(probes, &rect, r_sq, &mut kept);
            if kept.is_empty() {
                continue;
            }
            for &b in blocks {
                let blk = self.read_block(b, cx);
                if let [q] = kept.as_slice() {
                    // Single surviving probe: the vectorized radius filter
                    // preserves the (point-major) visit order.
                    let q = *q;
                    blk.for_each_within(&q, r_sq, |p, _| visit(&p, &q));
                } else {
                    for p in blk.iter_points() {
                        for q in &kept {
                            if p.dist_sq(q) <= r_sq {
                                visit(&p, q);
                            }
                        }
                    }
                }
            }
        }
    }

    fn insert(&mut self, p: Point) {
        let cell = Self::cell_of(self.side, &p);
        // "Grid adds a new point p to the last block in the cell enclosing p"
        // (§6.2.5); allocate a new block when the last one is full.
        let target = match self.cells[cell].last() {
            Some(&b) if !self.store.block(b).is_full() => b,
            _ => {
                let b = self.store.allocate();
                self.cells[cell].push(b);
                b
            }
        };
        self.store.block_mut(target).push(p);
        self.n_points += 1;
    }

    fn delete(&mut self, p: &Point) -> bool {
        let cell = Self::cell_of(self.side, p);
        for i in 0..self.cells[cell].len() {
            let b = self.cells[cell][i];
            let found = self.store.block(b).find_at(p.x, p.y).map(|q| q.id);
            if let Some(id) = found {
                if id == p.id || p.id == 0 {
                    self.store.block_mut(b).remove_by_id(id);
                    self.n_points -= 1;
                    return true;
                }
            }
        }
        false
    }

    fn size_bytes(&self) -> usize {
        let cell_table: usize = self
            .cells
            .iter()
            .map(|c| c.len() * std::mem::size_of::<BlockId>() + std::mem::size_of::<Vec<BlockId>>())
            .sum();
        self.store.size_bytes() + cell_table
    }

    fn height(&self) -> usize {
        1
    }

    fn write_snapshot(&self, w: &mut SnapshotWriter) -> Result<(), PersistError> {
        self.store.write_snapshot(w);
        w.begin_section(SECTION_GRID);
        w.put_usize(self.side);
        w.put_usize(self.n_points);
        w.put_usize(self.cells.len());
        for cell in &self.cells {
            w.put_usize(cell.len());
            for &b in cell {
                w.put_usize(b);
            }
        }
        w.end_section();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use common::brute_force;
    use datagen::{generate, Distribution};

    fn cx() -> QueryContext {
        QueryContext::new()
    }

    fn build_small() -> (Vec<Point>, GridFile) {
        let pts = generate(Distribution::Uniform, 1500, 7);
        let grid = GridFile::build(pts.clone(), 20);
        (pts, grid)
    }

    #[test]
    fn point_queries_find_every_point() {
        let (pts, grid) = build_small();
        for p in &pts {
            assert_eq!(grid.point_query(p, &mut cx()).unwrap().id, p.id);
        }
        assert!(grid
            .point_query(&Point::new(0.123456, 0.654321), &mut cx())
            .is_none());
    }

    #[test]
    fn window_queries_are_exact() {
        let (pts, grid) = build_small();
        for w in [
            Rect::new(0.1, 0.1, 0.4, 0.3),
            Rect::new(0.0, 0.0, 1.0, 1.0),
            Rect::new(0.91, 0.91, 0.99, 0.99),
        ] {
            let mut truth: Vec<u64> = brute_force::window_query(&pts, &w)
                .iter()
                .map(|p| p.id)
                .collect();
            let mut got: Vec<u64> = grid
                .window_query(&w, &mut cx())
                .iter()
                .map(|p| p.id)
                .collect();
            truth.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, truth);
        }
    }

    #[test]
    fn knn_matches_brute_force_distances() {
        let (pts, grid) = build_small();
        for q in [
            Point::new(0.5, 0.5),
            Point::new(0.02, 0.98),
            Point::new(0.77, 0.11),
        ] {
            for k in [1, 7, 30] {
                let truth = brute_force::knn_query(&pts, &q, k);
                let got = grid.knn_query(&q, k, &mut cx());
                assert_eq!(got.len(), k);
                for (t, g) in truth.iter().zip(&got) {
                    assert!(
                        (t.dist(&q) - g.dist(&q)).abs() < 1e-12,
                        "k={k} truth {} got {}",
                        t.dist(&q),
                        g.dist(&q)
                    );
                }
            }
        }
    }

    #[test]
    fn skewed_data_produces_multi_block_cells() {
        let pts = generate(Distribution::skewed_default(), 3000, 3);
        let grid = GridFile::build(pts.clone(), 20);
        // Dense cells near y = 0 need several blocks.
        let max_blocks = grid.cells.iter().map(Vec::len).max().unwrap();
        assert!(max_blocks > 1);
        // Queries still exact.
        let w = Rect::new(0.0, 0.0, 0.3, 0.05);
        assert_eq!(
            grid.window_query(&w, &mut cx()).len(),
            brute_force::window_query(&pts, &w).len()
        );
    }

    #[test]
    fn insert_and_delete_round_trip() {
        let (_, mut grid) = build_small();
        let p = Point::with_id(0.333, 0.444, 900_000);
        grid.insert(p);
        assert_eq!(grid.len(), 1501);
        assert_eq!(grid.point_query(&p, &mut cx()).unwrap().id, p.id);
        assert!(grid.delete(&p));
        assert!(grid.point_query(&p, &mut cx()).is_none());
        assert_eq!(grid.len(), 1500);
        assert!(!grid.delete(&p));
    }

    #[test]
    fn block_accesses_are_counted_per_query() {
        let (pts, grid) = build_small();
        let mut c = cx();
        let _ = grid.point_query(&pts[0], &mut c);
        let per_point = c.take_stats();
        assert!(per_point.blocks_touched >= 1);
        assert!(per_point.candidates_scanned >= 1);
        let _ = grid.window_query(&Rect::new(0.0, 0.0, 0.5, 0.5), &mut c);
        assert!(c.stats.blocks_touched > per_point.blocks_touched);
    }

    #[test]
    fn empty_grid_handles_queries() {
        let grid = GridFile::build(vec![], 20);
        assert!(grid.is_empty());
        assert!(grid.point_query(&Point::new(0.5, 0.5), &mut cx()).is_none());
        assert!(grid.window_query(&Rect::unit(), &mut cx()).is_empty());
        assert!(grid
            .knn_query(&Point::new(0.5, 0.5), 3, &mut cx())
            .is_empty());
    }

    #[test]
    fn grid_side_matches_configuration_rule() {
        let pts = generate(Distribution::Uniform, 10_000, 1);
        let grid = GridFile::build(pts, 100);
        assert_eq!(grid.grid_side(), 10); // sqrt(10000 / 100)
        assert_eq!(grid.height(), 1);
        assert_eq!(grid.name(), "Grid");
    }
}
