//! R\*-tree baseline ("RR\*" in the paper's figures).
//!
//! The paper compares against the *revised* R\*-tree of Beckmann & Seeger
//! (2009), using the authors' original C implementation.  That code is not
//! redistributable, so this module provides a faithful classic R\*-tree
//! (Beckmann et al., 1990) built by dynamic insertion: `ChooseSubtree` with
//! overlap-minimising leaf selection and the R\*-axis/distribution split.
//! Forced reinsertion is omitted (see DESIGN.md §2); its main effect is a
//! modest quality improvement that does not change the comparison's shape —
//! the role of RR\* in the evaluation is "strong dynamic R-tree baseline
//! with slow, insertion-based construction".

use common::{QueryContext, SpatialIndex};
use geom::{Point, Rect};
use persist::{PersistError, SnapshotReader, SnapshotWriter};

/// Maximum entries per node (paper: 100 points per leaf / 100 MBRs per node).
const MAX_ENTRIES: usize = 100;

/// Section tag of the R*-tree node arena.
const SECTION_RSTAR: u32 = 0x5201;
/// Minimum fill after a split (40 % of the maximum, the R\*-tree default).
const MIN_ENTRIES: usize = 40;

#[derive(Debug, Clone)]
enum NodeKind {
    Leaf(Vec<Point>),
    Internal(Vec<(Rect, usize)>),
}

#[derive(Debug, Clone)]
struct RNode {
    mbr: Rect,
    kind: NodeKind,
}

impl RNode {
    fn recompute_mbr(&mut self) {
        self.mbr = match &self.kind {
            NodeKind::Leaf(points) => points.iter().fold(Rect::empty(), |mut acc, p| {
                acc.expand_to_point(*p);
                acc
            }),
            NodeKind::Internal(children) => children
                .iter()
                .fold(Rect::empty(), |acc, (r, _)| acc.union(r)),
        };
    }

    fn len(&self) -> usize {
        match &self.kind {
            NodeKind::Leaf(p) => p.len(),
            NodeKind::Internal(c) => c.len(),
        }
    }
}

/// A pair of entry lists produced by a node split.
type EntrySplit = (Vec<(Rect, usize)>, Vec<(Rect, usize)>);

/// The R\*-tree index.
#[derive(Debug)]
pub struct RStarTree {
    nodes: Vec<RNode>,
    root: Option<usize>,
    height: usize,
    n_points: usize,
    block_capacity: usize,
}

impl RStarTree {
    /// Creates an empty tree.  `block_capacity` is accepted for interface
    /// symmetry with the other indices; leaf capacity is the R*-tree's own
    /// `MAX_ENTRIES` constant (100, the paper's `B`).
    pub fn new(block_capacity: usize) -> Self {
        Self {
            nodes: Vec::new(),
            root: None,
            height: 0,
            n_points: 0,
            block_capacity,
        }
    }

    /// Builds the tree by inserting every point, which is how the paper
    /// constructs RR\* (top-down insertions; Fig. 7b shows the resulting
    /// high construction cost).
    pub fn build(points: Vec<Point>, block_capacity: usize) -> Self {
        let mut tree = Self::new(block_capacity);
        for p in points {
            tree.insert(p);
        }
        tree
    }

    fn new_node(&mut self, kind: NodeKind) -> usize {
        let mut node = RNode {
            mbr: Rect::empty(),
            kind,
        };
        node.recompute_mbr();
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// R\*-tree ChooseSubtree: minimise overlap enlargement when the children
    /// are leaves, area enlargement otherwise.
    fn choose_subtree(&self, node: usize, p: &Point) -> usize {
        let NodeKind::Internal(children) = &self.nodes[node].kind else {
            unreachable!("choose_subtree is only called on internal nodes");
        };
        let point_rect = Rect::from_point(*p);
        let children_are_leaves = children
            .first()
            .map(|(_, c)| matches!(self.nodes[*c].kind, NodeKind::Leaf(_)))
            .unwrap_or(false);
        let mut best = children[0].1;
        let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for &(rect, child) in children {
            let enlarged = rect.union(&point_rect);
            let overlap_delta = if children_are_leaves {
                // Overlap of the enlarged rectangle with all siblings, minus
                // the current overlap.
                children
                    .iter()
                    .filter(|(_, c)| *c != child)
                    .map(|(r, _)| enlarged.intersection_area(r) - rect.intersection_area(r))
                    .sum()
            } else {
                0.0
            };
            let key = (overlap_delta, rect.enlargement(&point_rect), rect.area());
            if key < best_key {
                best_key = key;
                best = child;
            }
        }
        best
    }

    /// R\*-tree split of a leaf's points: choose the axis with the smallest
    /// total margin over all candidate distributions, then the distribution
    /// with the smallest overlap (ties: smallest total area).
    fn split_points(mut points: Vec<Point>) -> (Vec<Point>, Vec<Point>) {
        let candidates = |pts: &mut Vec<Point>, by_x: bool| -> (f64, usize, f64, f64) {
            if by_x {
                pts.sort_by(|a, b| a.x.partial_cmp(&b.x).unwrap_or(std::cmp::Ordering::Equal));
            } else {
                pts.sort_by(|a, b| a.y.partial_cmp(&b.y).unwrap_or(std::cmp::Ordering::Equal));
            }
            let n = pts.len();
            let mut margin_sum = 0.0;
            let mut best_split = MIN_ENTRIES;
            let mut best_overlap = f64::INFINITY;
            let mut best_area = f64::INFINITY;
            for split in MIN_ENTRIES..=(n - MIN_ENTRIES) {
                let left = pts[..split].iter().fold(Rect::empty(), |mut acc, p| {
                    acc.expand_to_point(*p);
                    acc
                });
                let right = pts[split..].iter().fold(Rect::empty(), |mut acc, p| {
                    acc.expand_to_point(*p);
                    acc
                });
                margin_sum += left.margin() + right.margin();
                let overlap = left.intersection_area(&right);
                let area = left.area() + right.area();
                if (overlap, area) < (best_overlap, best_area) {
                    best_overlap = overlap;
                    best_area = area;
                    best_split = split;
                }
            }
            (margin_sum, best_split, best_overlap, best_area)
        };
        let (margin_x, split_x, ..) = candidates(&mut points, true);
        let (margin_y, split_y, ..) = candidates(&mut points, false);
        // `points` is currently sorted by y (last call); resort if x wins.
        let split = if margin_x <= margin_y {
            points.sort_by(|a, b| a.x.partial_cmp(&b.x).unwrap_or(std::cmp::Ordering::Equal));
            split_x
        } else {
            split_y
        };
        let right = points.split_off(split);
        (points, right)
    }

    /// Same split procedure for internal entries, keyed on MBR centres.
    fn split_entries(mut entries: Vec<(Rect, usize)>) -> EntrySplit {
        let margin_of = |entries: &mut Vec<(Rect, usize)>, by_x: bool| -> (f64, usize) {
            if by_x {
                entries.sort_by(|a, b| {
                    (a.0.min_x, a.0.max_x)
                        .partial_cmp(&(b.0.min_x, b.0.max_x))
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
            } else {
                entries.sort_by(|a, b| {
                    (a.0.min_y, a.0.max_y)
                        .partial_cmp(&(b.0.min_y, b.0.max_y))
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
            }
            let n = entries.len();
            let lo = MIN_ENTRIES.min(n / 2).max(1);
            let mut margin_sum = 0.0;
            let mut best_split = lo;
            let mut best_key = (f64::INFINITY, f64::INFINITY);
            for split in lo..=(n - lo) {
                let left = entries[..split]
                    .iter()
                    .fold(Rect::empty(), |acc, (r, _)| acc.union(r));
                let right = entries[split..]
                    .iter()
                    .fold(Rect::empty(), |acc, (r, _)| acc.union(r));
                margin_sum += left.margin() + right.margin();
                let key = (left.intersection_area(&right), left.area() + right.area());
                if key < best_key {
                    best_key = key;
                    best_split = split;
                }
            }
            (margin_sum, best_split)
        };
        let (margin_x, split_x) = margin_of(&mut entries, true);
        let (margin_y, split_y) = margin_of(&mut entries, false);
        let split = if margin_x <= margin_y {
            entries.sort_by(|a, b| {
                (a.0.min_x, a.0.max_x)
                    .partial_cmp(&(b.0.min_x, b.0.max_x))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            split_x
        } else {
            split_y
        };
        let right = entries.split_off(split);
        (entries, right)
    }

    /// Recursive insertion; returns a new sibling (MBR, node) when the child
    /// was split.
    fn insert_into(&mut self, node: usize, p: Point) -> Option<(Rect, usize)> {
        match &self.nodes[node].kind {
            NodeKind::Leaf(_) => {
                if let NodeKind::Leaf(points) = &mut self.nodes[node].kind {
                    points.push(p);
                }
                if self.nodes[node].len() > MAX_ENTRIES {
                    let points = match std::mem::replace(
                        &mut self.nodes[node].kind,
                        NodeKind::Leaf(Vec::new()),
                    ) {
                        NodeKind::Leaf(pts) => pts,
                        NodeKind::Internal(_) => unreachable!(),
                    };
                    let (left, right) = Self::split_points(points);
                    self.nodes[node].kind = NodeKind::Leaf(left);
                    self.nodes[node].recompute_mbr();
                    let sibling = self.new_node(NodeKind::Leaf(right));
                    Some((self.nodes[sibling].mbr, sibling))
                } else {
                    self.nodes[node].mbr.expand_to_point(p);
                    None
                }
            }
            NodeKind::Internal(_) => {
                let child = self.choose_subtree(node, &p);
                let split = self.insert_into(child, p);
                // Refresh this child's MBR entry.
                let child_mbr = self.nodes[child].mbr;
                if let NodeKind::Internal(children) = &mut self.nodes[node].kind {
                    if let Some(entry) = children.iter_mut().find(|(_, c)| *c == child) {
                        entry.0 = child_mbr;
                    }
                    if let Some((mbr, sibling)) = split {
                        children.push((mbr, sibling));
                    }
                }
                self.nodes[node].recompute_mbr();
                if self.nodes[node].len() > MAX_ENTRIES {
                    let entries = match std::mem::replace(
                        &mut self.nodes[node].kind,
                        NodeKind::Internal(Vec::new()),
                    ) {
                        NodeKind::Internal(e) => e,
                        NodeKind::Leaf(_) => unreachable!(),
                    };
                    let (left, right) = Self::split_entries(entries);
                    self.nodes[node].kind = NodeKind::Internal(left);
                    self.nodes[node].recompute_mbr();
                    let sibling = self.new_node(NodeKind::Internal(right));
                    Some((self.nodes[sibling].mbr, sibling))
                } else {
                    None
                }
            }
        }
    }

    /// Reads an R*-tree snapshot written by
    /// [`SpatialIndex::write_snapshot`].
    pub fn read_snapshot(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        r.begin_section(SECTION_RSTAR)?;
        let root = r.get_opt_usize()?;
        let height = r.get_usize()?;
        let n_points = r.get_usize()?;
        let block_capacity = r.get_usize()?;
        let n_nodes = r.get_len(33)?;
        let mut nodes = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            let mbr = r.get_rect()?;
            let kind = match r.get_u8()? {
                0 => {
                    let len = r.get_len(40)?;
                    let mut entries = Vec::with_capacity(len);
                    for _ in 0..len {
                        let rect = r.get_rect()?;
                        let child = r.get_usize()?;
                        if child >= n_nodes {
                            return Err(PersistError::Corrupt(format!(
                                "R*-tree entry child {child} out of range"
                            )));
                        }
                        entries.push((rect, child));
                    }
                    NodeKind::Internal(entries)
                }
                1 => {
                    let len = r.get_len(24)?;
                    let mut points = Vec::with_capacity(len);
                    for _ in 0..len {
                        points.push(r.get_point()?);
                    }
                    NodeKind::Leaf(points)
                }
                other => {
                    return Err(PersistError::Corrupt(format!(
                        "unknown R*-tree node kind byte {other}"
                    )))
                }
            };
            nodes.push(RNode { mbr, kind });
        }
        if root.is_some_and(|root| root >= n_nodes) {
            return Err(PersistError::Corrupt("R*-tree root out of range".into()));
        }
        r.end_section()?;
        Ok(Self {
            nodes,
            root,
            height,
            n_points,
            block_capacity,
        })
    }
}

impl SpatialIndex for RStarTree {
    fn name(&self) -> &'static str {
        "RR*"
    }

    fn len(&self) -> usize {
        self.n_points
    }

    fn point_query(&self, q: &Point, cx: &mut QueryContext) -> Option<Point> {
        let root = self.root?;
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if !self.nodes[id].mbr.contains(q) {
                continue;
            }
            match &self.nodes[id].kind {
                NodeKind::Internal(children) => {
                    cx.count_node();
                    for (rect, child) in children {
                        if rect.contains(q) {
                            stack.push(*child);
                        }
                    }
                }
                NodeKind::Leaf(points) => {
                    // A leaf is this tree's data page: charge it as a block.
                    cx.count_block_scan(points.len());
                    if let Some(p) = points.iter().find(|p| p.x == q.x && p.y == q.y) {
                        return Some(*p);
                    }
                }
            }
        }
        None
    }

    fn window_query_visit(
        &self,
        window: &Rect,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point),
    ) {
        let Some(root) = self.root else { return };
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if !self.nodes[id].mbr.intersects(window) {
                continue;
            }
            match &self.nodes[id].kind {
                NodeKind::Internal(children) => {
                    cx.count_node();
                    for (rect, child) in children {
                        if rect.intersects(window) {
                            stack.push(*child);
                        }
                    }
                }
                NodeKind::Leaf(points) => {
                    cx.count_block_scan(points.len());
                    for p in points {
                        if window.contains(p) {
                            visit(p);
                        }
                    }
                }
            }
        }
    }

    fn knn_query_visit(
        &self,
        q: &Point,
        k: usize,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point),
    ) {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        enum Item {
            Node(usize),
            Point(Point),
        }
        // Ordered by (distance, node-before-point, point id) so that
        // equal-distance points emit deterministically in id order (nodes
        // expand first, letting tied points inside them compete).
        struct Entry(f64, bool, u64, Item);
        impl PartialEq for Entry {
            fn eq(&self, other: &Self) -> bool {
                self.cmp(other) == std::cmp::Ordering::Equal
            }
        }
        impl Eq for Entry {}
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0
                    .partial_cmp(&other.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(self.1.cmp(&other.1))
                    .then(self.2.cmp(&other.2))
            }
        }
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }

        if k == 0 {
            return;
        }
        let Some(root) = self.root else { return };
        let mut found = 0usize;
        let mut heap = BinaryHeap::new();
        heap.push(Reverse(Entry(
            self.nodes[root].mbr.min_dist(q),
            false,
            0,
            Item::Node(root),
        )));
        while let Some(Reverse(Entry(_, _, _, item))) = heap.pop() {
            match item {
                Item::Point(p) => {
                    visit(&p);
                    found += 1;
                    if found == k {
                        break;
                    }
                }
                Item::Node(id) => match &self.nodes[id].kind {
                    NodeKind::Internal(children) => {
                        cx.count_node();
                        for (rect, child) in children {
                            heap.push(Reverse(Entry(
                                rect.min_dist(q),
                                false,
                                0,
                                Item::Node(*child),
                            )));
                        }
                    }
                    NodeKind::Leaf(points) => {
                        cx.count_block_scan(points.len());
                        for p in points {
                            heap.push(Reverse(Entry(p.dist(q), true, p.id, Item::Point(*p))));
                        }
                    }
                },
            }
        }
    }

    fn range_query_visit(
        &self,
        center: &Point,
        radius: f64,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point),
    ) {
        // MINDIST traversal: tighter than the default circumscribing-box
        // window query.
        if !radius.is_finite() || radius < 0.0 {
            return;
        }
        let r_sq = radius * radius;
        let Some(root) = self.root else { return };
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if self.nodes[id].mbr.min_dist_sq(center) > r_sq {
                continue;
            }
            match &self.nodes[id].kind {
                NodeKind::Internal(children) => {
                    cx.count_node();
                    for (rect, child) in children {
                        if rect.min_dist_sq(center) <= r_sq {
                            stack.push(*child);
                        }
                    }
                }
                NodeKind::Leaf(points) => {
                    cx.count_block_scan(points.len());
                    for p in points {
                        if p.dist_sq(center) <= r_sq {
                            visit(p);
                        }
                    }
                }
            }
        }
    }

    fn for_each_point(&self, visit: &mut dyn FnMut(&Point)) {
        let Some(root) = self.root else { return };
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            match &self.nodes[id].kind {
                NodeKind::Internal(children) => {
                    for (_, child) in children {
                        stack.push(*child);
                    }
                }
                NodeKind::Leaf(points) => {
                    for p in points {
                        visit(p);
                    }
                }
            }
        }
    }

    fn distance_join_probes(
        &self,
        probes: &[Point],
        radius: f64,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point, &Point),
    ) {
        // Directory-MBR filter cascade (see the HRR implementation): one
        // traversal carries the probe set, each leaf page is charged once.
        if !radius.is_finite() || radius < 0.0 || probes.is_empty() {
            return;
        }
        let r_sq = radius * radius;
        let Some(root) = self.root else { return };
        let root_kept: Vec<Point> = probes
            .iter()
            .filter(|q| self.nodes[root].mbr.min_dist_sq(q) <= r_sq)
            .copied()
            .collect();
        if root_kept.is_empty() {
            return;
        }
        let mut stack = vec![(root, root_kept)];
        while let Some((id, cand)) = stack.pop() {
            match &self.nodes[id].kind {
                NodeKind::Internal(children) => {
                    cx.count_node();
                    for (rect, child) in children {
                        let kept: Vec<Point> = cand
                            .iter()
                            .filter(|q| rect.min_dist_sq(q) <= r_sq)
                            .copied()
                            .collect();
                        if !kept.is_empty() {
                            stack.push((*child, kept));
                        }
                    }
                }
                NodeKind::Leaf(points) => {
                    cx.count_block_scan(points.len());
                    for p in points {
                        for q in &cand {
                            if p.dist_sq(q) <= r_sq {
                                visit(p, q);
                            }
                        }
                    }
                }
            }
        }
    }

    fn insert(&mut self, p: Point) {
        match self.root {
            None => {
                let root = self.new_node(NodeKind::Leaf(vec![p]));
                self.root = Some(root);
                self.height = 1;
            }
            Some(root) => {
                if let Some((sibling_mbr, sibling)) = self.insert_into(root, p) {
                    // Root split: grow the tree by one level.
                    let old_root_mbr = self.nodes[root].mbr;
                    let new_root = self.new_node(NodeKind::Internal(vec![
                        (old_root_mbr, root),
                        (sibling_mbr, sibling),
                    ]));
                    self.root = Some(new_root);
                    self.height += 1;
                }
            }
        }
        self.n_points += 1;
    }

    fn delete(&mut self, p: &Point) -> bool {
        // Locate the leaf containing p via an MBR-guided search, remove it,
        // and tighten ancestor MBRs.  Underflow handling (entry reinsertion)
        // is omitted: the paper's deletion experiments only flag points as
        // deleted as well.
        let Some(root) = self.root else { return false };
        fn recurse(tree: &mut RStarTree, node: usize, p: &Point) -> bool {
            if !tree.nodes[node].mbr.contains(p) {
                return false;
            }
            match tree.nodes[node].kind.clone() {
                NodeKind::Leaf(_) => {
                    if let NodeKind::Leaf(points) = &mut tree.nodes[node].kind {
                        let before = points.len();
                        points
                            .retain(|q| !(q.x == p.x && q.y == p.y && (q.id == p.id || p.id == 0)));
                        if points.len() != before {
                            tree.nodes[node].recompute_mbr();
                            return true;
                        }
                    }
                    false
                }
                NodeKind::Internal(children) => {
                    for (rect, child) in children {
                        if rect.contains(p) && recurse(tree, child, p) {
                            let child_mbr = tree.nodes[child].mbr;
                            if let NodeKind::Internal(entries) = &mut tree.nodes[node].kind {
                                if let Some(entry) = entries.iter_mut().find(|(_, c)| *c == child) {
                                    entry.0 = child_mbr;
                                }
                            }
                            tree.nodes[node].recompute_mbr();
                            return true;
                        }
                    }
                    false
                }
            }
        }
        if recurse(self, root, p) {
            self.n_points -= 1;
            true
        } else {
            false
        }
    }

    fn size_bytes(&self) -> usize {
        // R*-tree nodes are charged at full capacity (like disk pages); this
        // is why RR* is the largest structure in Fig. 7a.
        let leaf_page = self.block_capacity.max(MAX_ENTRIES) * std::mem::size_of::<Point>();
        self.nodes
            .iter()
            .map(|n| match &n.kind {
                NodeKind::Leaf(_) => leaf_page,
                NodeKind::Internal(_) => MAX_ENTRIES * (std::mem::size_of::<Rect>() + 8),
            })
            .sum::<usize>()
            + self.nodes.len() * std::mem::size_of::<Rect>()
    }

    fn height(&self) -> usize {
        self.height
    }

    fn write_snapshot(&self, w: &mut SnapshotWriter) -> Result<(), PersistError> {
        w.begin_section(SECTION_RSTAR);
        w.put_opt_usize(self.root);
        w.put_usize(self.height);
        w.put_usize(self.n_points);
        w.put_usize(self.block_capacity);
        w.put_usize(self.nodes.len());
        for node in &self.nodes {
            w.put_rect(&node.mbr);
            match &node.kind {
                NodeKind::Internal(entries) => {
                    w.put_u8(0);
                    w.put_usize(entries.len());
                    for (rect, child) in entries {
                        w.put_rect(rect);
                        w.put_usize(*child);
                    }
                }
                NodeKind::Leaf(points) => {
                    w.put_u8(1);
                    w.put_usize(points.len());
                    for p in points {
                        w.put_point(p);
                    }
                }
            }
        }
        w.end_section();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use common::brute_force;
    use datagen::{generate, Distribution};

    fn cx() -> QueryContext {
        QueryContext::new()
    }

    fn build_small(n: usize) -> (Vec<Point>, RStarTree) {
        let pts = generate(Distribution::Normal, n, 37);
        let tree = RStarTree::build(pts.clone(), 100);
        (pts, tree)
    }

    #[test]
    fn point_queries_find_every_point() {
        let (pts, tree) = build_small(1200);
        for p in &pts {
            assert_eq!(tree.point_query(p, &mut cx()).map(|f| f.id), Some(p.id));
        }
        assert!(tree
            .point_query(&Point::new(0.123, 0.321), &mut cx())
            .is_none());
    }

    #[test]
    fn node_occupancy_respects_bounds_after_splits() {
        let (_, tree) = build_small(3000);
        for (i, node) in tree.nodes.iter().enumerate() {
            if Some(i) == tree.root {
                continue;
            }
            assert!(node.len() <= MAX_ENTRIES, "node {i} overflows");
        }
        assert!(tree.height() >= 2);
    }

    #[test]
    fn mbrs_contain_their_subtrees() {
        let (_, tree) = build_small(2000);
        fn check(tree: &RStarTree, node: usize) {
            match &tree.nodes[node].kind {
                NodeKind::Leaf(points) => {
                    for p in points {
                        assert!(tree.nodes[node].mbr.contains(p));
                    }
                }
                NodeKind::Internal(children) => {
                    for (rect, child) in children {
                        assert!(tree.nodes[node].mbr.contains_rect(rect));
                        assert!(rect.contains_rect(&tree.nodes[*child].mbr));
                        check(tree, *child);
                    }
                }
            }
        }
        check(&tree, tree.root.unwrap());
    }

    #[test]
    fn window_queries_are_exact() {
        let (pts, tree) = build_small(2500);
        for w in [
            Rect::new(0.45, 0.45, 0.55, 0.55),
            Rect::new(0.0, 0.0, 1.0, 1.0),
            Rect::new(0.3, 0.6, 0.35, 0.9),
        ] {
            let mut truth: Vec<u64> = brute_force::window_query(&pts, &w)
                .iter()
                .map(|p| p.id)
                .collect();
            let mut got: Vec<u64> = tree
                .window_query(&w, &mut cx())
                .iter()
                .map(|p| p.id)
                .collect();
            truth.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, truth);
        }
    }

    #[test]
    fn knn_matches_brute_force_distances() {
        let (pts, tree) = build_small(1500);
        for q in [Point::new(0.5, 0.5), Point::new(0.1, 0.85)] {
            for k in [1, 10, 100] {
                let truth = brute_force::knn_query(&pts, &q, k);
                let got = tree.knn_query(&q, k, &mut cx());
                assert_eq!(got.len(), k);
                for (t, g) in truth.iter().zip(&got) {
                    assert!((t.dist(&q) - g.dist(&q)).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn delete_removes_points_and_shrinks_count() {
        let (pts, mut tree) = build_small(800);
        for p in pts.iter().take(50) {
            assert!(tree.delete(p), "failed to delete {p:?}");
            assert!(tree.point_query(p, &mut cx()).is_none());
        }
        assert_eq!(tree.len(), 750);
        assert!(!tree.delete(&pts[0]));
    }

    #[test]
    fn empty_tree_queries_and_first_insert() {
        let mut tree = RStarTree::new(100);
        assert!(tree.point_query(&Point::new(0.5, 0.5), &mut cx()).is_none());
        assert!(tree.window_query(&Rect::unit(), &mut cx()).is_empty());
        assert!(tree
            .knn_query(&Point::new(0.5, 0.5), 3, &mut cx())
            .is_empty());
        tree.insert(Point::with_id(0.4, 0.2, 9));
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.height(), 1);
        assert!(tree.point_query(&Point::new(0.4, 0.2), &mut cx()).is_some());
    }

    #[test]
    fn access_accounting_and_size_reporting() {
        let (pts, tree) = build_small(2000);
        let mut c = cx();
        let _ = tree.point_query(&pts[3], &mut c);
        assert!(c.stats.total_accesses() >= 2);
        assert!(tree.size_bytes() > 0);
        assert_eq!(tree.name(), "RR*");
    }
}
