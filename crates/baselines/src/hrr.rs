//! HRR — the rank-space-based R-tree baseline (Qi et al., PVLDB 2018).
//!
//! This is the R-tree bulk-loading technique the RSMI paper builds its
//! ordering on: points are mapped to the rank space, ordered along a Hilbert
//! curve, and every `B` consecutive points are packed into a leaf; upper
//! levels are built by packing every `F` node MBRs into a parent.  The
//! resulting R-tree offers "the state-of-the-art window query performance"
//! and is the paper's strongest traditional competitor.

use common::{QueryContext, SpatialIndex};
use geom::{Point, Rect};
use persist::{PersistError, SnapshotReader, SnapshotWriter};
use sfc::{CurveKind, RankSpace};
use storage::{BlockId, BlockStore};

/// Fan-out of internal nodes (the paper stores up to 100 MBRs per node).
const FANOUT: usize = 100;

/// Section tag of the HRR directory (nodes and block MBRs).
const SECTION_HRR: u32 = 0x4801;

#[derive(Debug, Clone)]
enum NodeKind {
    /// Children are other internal nodes.
    Internal(Vec<usize>),
    /// Children are data blocks in the block store.
    LeafParent(Vec<BlockId>),
}

#[derive(Debug, Clone)]
struct TreeNode {
    mbr: Rect,
    kind: NodeKind,
}

/// The bulk-loaded rank-space Hilbert R-tree ("HRR").
#[derive(Debug)]
pub struct HilbertRTree {
    store: BlockStore,
    nodes: Vec<TreeNode>,
    /// MBR of each data block (kept in the directory so that traversal can
    /// prune without touching the block itself).
    block_mbrs: Vec<Rect>,
    root: Option<usize>,
    height: usize,
    n_points: usize,
}

impl HilbertRTree {
    /// Bulk-loads the tree with the given block capacity.
    pub fn build(points: Vec<Point>, block_capacity: usize) -> Self {
        let n = points.len();
        let mut store = BlockStore::new(block_capacity);
        if n == 0 {
            return Self {
                store,
                nodes: Vec::new(),
                block_mbrs: Vec::new(),
                root: None,
                height: 0,
                n_points: 0,
            };
        }
        // Rank-space Hilbert ordering, then packing (§3.1 of the RSMI paper,
        // which reuses exactly this construction).
        let rs = RankSpace::new(&points);
        let perm = rs.sorted_permutation(CurveKind::Hilbert);
        let ordered: Vec<Point> = perm.into_iter().map(|i| points[i]).collect();
        let range = store.pack(&ordered);
        let block_mbrs: Vec<Rect> = range.clone().map(|id| store.block(id).mbr()).collect();

        // Build the directory bottom-up: pack every FANOUT children into a
        // parent node, level by level, until a single root remains.
        let mut nodes: Vec<TreeNode> = Vec::new();
        let mut current: Vec<usize> = Vec::new();
        for chunk_start in (0..block_mbrs.len()).step_by(FANOUT) {
            let chunk_end = (chunk_start + FANOUT).min(block_mbrs.len());
            let blocks: Vec<BlockId> =
                (range.start + chunk_start..range.start + chunk_end).collect();
            let mbr = block_mbrs[chunk_start..chunk_end]
                .iter()
                .fold(Rect::empty(), |acc, r| acc.union(r));
            nodes.push(TreeNode {
                mbr,
                kind: NodeKind::LeafParent(blocks),
            });
            current.push(nodes.len() - 1);
        }
        let mut height = 2; // leaf-parent level + data blocks
        while current.len() > 1 {
            let mut next = Vec::new();
            for chunk in current.chunks(FANOUT) {
                let mbr = chunk
                    .iter()
                    .map(|&i| nodes[i].mbr)
                    .fold(Rect::empty(), |acc, r| acc.union(&r));
                nodes.push(TreeNode {
                    mbr,
                    kind: NodeKind::Internal(chunk.to_vec()),
                });
                next.push(nodes.len() - 1);
            }
            current = next;
            height += 1;
        }
        let root = current.first().copied();
        Self {
            store,
            nodes,
            block_mbrs,
            root,
            height,
            n_points: n,
        }
    }

    fn block_mbr(&self, id: BlockId) -> Rect {
        self.block_mbrs
            .get(id)
            .copied()
            .unwrap_or_else(|| self.store.block(id).mbr())
    }

    fn update_block_mbr(&mut self, id: BlockId) {
        let mbr = self.store.block(id).mbr();
        if id < self.block_mbrs.len() {
            self.block_mbrs[id] = mbr;
        } else {
            // Blocks appended by insertion splits.
            while self.block_mbrs.len() < id {
                self.block_mbrs.push(Rect::empty());
            }
            self.block_mbrs.push(mbr);
        }
    }

    /// Recomputes ancestor MBRs along a root-to-node path after an update.
    fn refresh_mbrs(&mut self, path: &[usize]) {
        for &node_id in path.iter().rev() {
            let mbr = match &self.nodes[node_id].kind {
                NodeKind::Internal(children) => children
                    .iter()
                    .map(|&c| self.nodes[c].mbr)
                    .fold(Rect::empty(), |acc, r| acc.union(&r)),
                NodeKind::LeafParent(blocks) => blocks
                    .iter()
                    .map(|&b| self.block_mbr(b))
                    .fold(Rect::empty(), |acc, r| acc.union(&r)),
            };
            self.nodes[node_id].mbr = mbr;
        }
    }

    /// Chooses the leaf-parent (and block) with the minimum MBR enlargement
    /// for an insertion, returning the path of internal nodes.
    fn choose_block(&self, p: &Point) -> Option<(Vec<usize>, BlockId)> {
        let mut cur = self.root?;
        let mut path = vec![cur];
        loop {
            match &self.nodes[cur].kind {
                NodeKind::Internal(children) => {
                    let best = children
                        .iter()
                        .copied()
                        .min_by(|&a, &b| {
                            let ea = self.nodes[a].mbr.enlargement(&Rect::from_point(*p));
                            let eb = self.nodes[b].mbr.enlargement(&Rect::from_point(*p));
                            ea.partial_cmp(&eb)
                                .unwrap_or(std::cmp::Ordering::Equal)
                                .then_with(|| {
                                    self.nodes[a]
                                        .mbr
                                        .area()
                                        .partial_cmp(&self.nodes[b].mbr.area())
                                        .unwrap_or(std::cmp::Ordering::Equal)
                                })
                        })
                        .expect("internal nodes have children");
                    path.push(best);
                    cur = best;
                }
                NodeKind::LeafParent(blocks) => {
                    let best = blocks
                        .iter()
                        .copied()
                        .min_by(|&a, &b| {
                            let ea = self.block_mbr(a).enlargement(&Rect::from_point(*p));
                            let eb = self.block_mbr(b).enlargement(&Rect::from_point(*p));
                            ea.partial_cmp(&eb).unwrap_or(std::cmp::Ordering::Equal)
                        })
                        .expect("leaf parents have blocks");
                    return Some((path, best));
                }
            }
        }
    }

    /// Reads a block as part of a query, charging the access and its
    /// candidates to the context.
    #[inline]
    fn read_block(&self, id: BlockId, cx: &mut QueryContext) -> &storage::Block {
        let block = self.store.block(id);
        cx.count_block_scan(block.len());
        block
    }

    /// Reads an HRR snapshot written by [`SpatialIndex::write_snapshot`].
    pub fn read_snapshot(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        let store = BlockStore::read_snapshot(r)?;
        r.begin_section(SECTION_HRR)?;
        let root = r.get_opt_usize()?;
        let height = r.get_usize()?;
        let n_points = r.get_usize()?;
        let n_nodes = r.get_len(33)?;
        let mut nodes = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            let mbr = r.get_rect()?;
            let kind = match r.get_u8()? {
                0 => {
                    let len = r.get_len(8)?;
                    let mut children = Vec::with_capacity(len);
                    for _ in 0..len {
                        let c = r.get_usize()?;
                        if c >= n_nodes {
                            return Err(PersistError::Corrupt(format!(
                                "HRR node child {c} out of range"
                            )));
                        }
                        children.push(c);
                    }
                    NodeKind::Internal(children)
                }
                1 => {
                    let len = r.get_len(8)?;
                    let mut blocks = Vec::with_capacity(len);
                    for _ in 0..len {
                        let b = r.get_usize()?;
                        if b >= store.len() {
                            return Err(PersistError::Corrupt(format!(
                                "HRR leaf parent references nonexistent block {b}"
                            )));
                        }
                        blocks.push(b);
                    }
                    NodeKind::LeafParent(blocks)
                }
                other => {
                    return Err(PersistError::Corrupt(format!(
                        "unknown HRR node kind byte {other}"
                    )))
                }
            };
            nodes.push(TreeNode { mbr, kind });
        }
        if root.is_some_and(|root| root >= n_nodes) {
            return Err(PersistError::Corrupt("HRR root out of range".into()));
        }
        let n_mbrs = r.get_len(32)?;
        let mut block_mbrs = Vec::with_capacity(n_mbrs);
        for _ in 0..n_mbrs {
            block_mbrs.push(r.get_rect()?);
        }
        r.end_section()?;
        Ok(Self {
            store,
            nodes,
            block_mbrs,
            root,
            height,
            n_points,
        })
    }
}

impl SpatialIndex for HilbertRTree {
    fn name(&self) -> &'static str {
        "HRR"
    }

    fn len(&self) -> usize {
        self.n_points
    }

    fn point_query(&self, q: &Point, cx: &mut QueryContext) -> Option<Point> {
        let root = self.root?;
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if !self.nodes[id].mbr.contains(q) {
                continue;
            }
            cx.count_node();
            match &self.nodes[id].kind {
                NodeKind::Internal(children) => {
                    for &c in children {
                        if self.nodes[c].mbr.contains(q) {
                            stack.push(c);
                        }
                    }
                }
                NodeKind::LeafParent(blocks) => {
                    for &b in blocks {
                        if !self.block_mbr(b).contains(q) {
                            continue;
                        }
                        if let Some(p) = self.read_block(b, cx).find_at(q.x, q.y) {
                            return Some(p);
                        }
                    }
                }
            }
        }
        None
    }

    fn window_query_visit(
        &self,
        window: &Rect,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point),
    ) {
        let Some(root) = self.root else { return };
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if !self.nodes[id].mbr.intersects(window) {
                continue;
            }
            cx.count_node();
            match &self.nodes[id].kind {
                NodeKind::Internal(children) => {
                    for &c in children {
                        if self.nodes[c].mbr.intersects(window) {
                            stack.push(c);
                        }
                    }
                }
                NodeKind::LeafParent(blocks) => {
                    for &b in blocks {
                        if !self.block_mbr(b).intersects(window) {
                            continue;
                        }
                        self.read_block(b, cx)
                            .for_each_in_rect(window, |p| visit(&p));
                    }
                }
            }
        }
    }

    fn knn_query_visit(
        &self,
        q: &Point,
        k: usize,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point),
    ) {
        // Best-first search (Roussopoulos et al.) over nodes, blocks and
        // points, ordered by MINDIST / distance.
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        enum Item {
            Node(usize),
            Block(BlockId),
            Point(Point),
        }
        // Ordered by (distance, container-before-point, point id) so that
        // equal-distance points emit deterministically in id order (nodes
        // and blocks expand first, letting tied points inside them compete).
        struct Entry(f64, bool, u64, Item);
        impl PartialEq for Entry {
            fn eq(&self, other: &Self) -> bool {
                self.cmp(other) == std::cmp::Ordering::Equal
            }
        }
        impl Eq for Entry {}
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0
                    .partial_cmp(&other.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(self.1.cmp(&other.1))
                    .then(self.2.cmp(&other.2))
            }
        }
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }

        if k == 0 {
            return;
        }
        let Some(root) = self.root else { return };
        let mut found = 0usize;
        let mut heap = BinaryHeap::new();
        heap.push(Reverse(Entry(
            self.nodes[root].mbr.min_dist(q),
            false,
            0,
            Item::Node(root),
        )));
        while let Some(Reverse(Entry(_, _, _, item))) = heap.pop() {
            match item {
                Item::Point(p) => {
                    visit(&p);
                    found += 1;
                    if found == k {
                        break;
                    }
                }
                Item::Block(b) => {
                    self.read_block(b, cx).for_each_dist_sq(q, |p, d_sq| {
                        heap.push(Reverse(Entry(d_sq.sqrt(), true, p.id, Item::Point(p))));
                    });
                }
                Item::Node(id) => {
                    cx.count_node();
                    match &self.nodes[id].kind {
                        NodeKind::Internal(children) => {
                            for &c in children {
                                heap.push(Reverse(Entry(
                                    self.nodes[c].mbr.min_dist(q),
                                    false,
                                    0,
                                    Item::Node(c),
                                )));
                            }
                        }
                        NodeKind::LeafParent(blocks) => {
                            for &b in blocks {
                                heap.push(Reverse(Entry(
                                    self.block_mbr(b).min_dist(q),
                                    false,
                                    0,
                                    Item::Block(b),
                                )));
                            }
                        }
                    }
                }
            }
        }
    }

    fn range_query_visit(
        &self,
        center: &Point,
        radius: f64,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point),
    ) {
        // MINDIST traversal: tighter than the default circumscribing-box
        // window (a node overlapping the box's corners but not the circle is
        // pruned here).
        if !radius.is_finite() || radius < 0.0 {
            return;
        }
        let r_sq = radius * radius;
        let Some(root) = self.root else { return };
        if self.nodes[root].mbr.min_dist_sq(center) > r_sq {
            return;
        }
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            cx.count_node();
            match &self.nodes[id].kind {
                NodeKind::Internal(children) => {
                    for &c in children {
                        if self.nodes[c].mbr.min_dist_sq(center) <= r_sq {
                            stack.push(c);
                        }
                    }
                }
                NodeKind::LeafParent(blocks) => {
                    for &b in blocks {
                        if self.block_mbr(b).min_dist_sq(center) > r_sq {
                            continue;
                        }
                        self.read_block(b, cx)
                            .for_each_within(center, r_sq, |p, _| visit(&p));
                    }
                }
            }
        }
    }

    fn for_each_point(&self, visit: &mut dyn FnMut(&Point)) {
        for (_, block) in self.store.iter() {
            for p in block.iter_points() {
                visit(&p);
            }
        }
    }

    fn distance_join_probes(
        &self,
        probes: &[Point],
        radius: f64,
        cx: &mut QueryContext,
        visit: &mut dyn FnMut(&Point, &Point),
    ) {
        // Directory-MBR filter cascade: one traversal carries the whole
        // probe set, discarding probes farther than the radius from each
        // node's MBR before descending.  Every surviving block is read once,
        // however many probes reach it — block-level pruning instead of one
        // root-to-leaf probe per point.
        if !radius.is_finite() || radius < 0.0 || probes.is_empty() {
            return;
        }
        let r_sq = radius * radius;
        let Some(root) = self.root else { return };
        let mut root_kept = Vec::new();
        storage::kernels::probes_within(probes, &self.nodes[root].mbr, r_sq, &mut root_kept);
        if root_kept.is_empty() {
            return;
        }
        let mut stack = vec![(root, root_kept)];
        while let Some((id, cand)) = stack.pop() {
            cx.count_node();
            match &self.nodes[id].kind {
                NodeKind::Internal(children) => {
                    for &c in children {
                        let mut kept = Vec::new();
                        storage::kernels::probes_within(&cand, &self.nodes[c].mbr, r_sq, &mut kept);
                        if !kept.is_empty() {
                            stack.push((c, kept));
                        }
                    }
                }
                NodeKind::LeafParent(blocks) => {
                    let mut kept = Vec::new();
                    for &b in blocks {
                        storage::kernels::probes_within(&cand, &self.block_mbr(b), r_sq, &mut kept);
                        if kept.is_empty() {
                            continue;
                        }
                        let blk = self.read_block(b, cx);
                        if let [q] = kept.as_slice() {
                            // Single surviving probe: the vectorized radius
                            // filter preserves the (point-major) visit order.
                            let q = *q;
                            blk.for_each_within(&q, r_sq, |p, _| visit(&p, &q));
                        } else {
                            for p in blk.iter_points() {
                                for q in &kept {
                                    if p.dist_sq(q) <= r_sq {
                                        visit(&p, q);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    fn insert(&mut self, p: Point) {
        if self.root.is_none() {
            *self = HilbertRTree::build(vec![p], self.store.capacity());
            return;
        }
        let (path, block) = self.choose_block(&p).expect("non-empty tree");
        if !self.store.block(block).is_full() {
            self.store.block_mut(block).push(p);
            self.update_block_mbr(block);
        } else {
            // Split: move the half of the block farthest from the new point's
            // side along the longer MBR axis into a fresh block registered
            // under the same leaf parent.
            let mut pts: Vec<Point> = self.store.block(block).to_points();
            pts.push(p);
            let mbr = pts.iter().fold(Rect::empty(), |mut acc, q| {
                acc.expand_to_point(*q);
                acc
            });
            if mbr.width() >= mbr.height() {
                pts.sort_by(|a, b| a.x.partial_cmp(&b.x).unwrap_or(std::cmp::Ordering::Equal));
            } else {
                pts.sort_by(|a, b| a.y.partial_cmp(&b.y).unwrap_or(std::cmp::Ordering::Equal));
            }
            let half = pts.len() / 2;
            let second: Vec<Point> = pts.split_off(half);
            // Rewrite the original block with the first half.
            let original = self.store.block_mut(block);
            let old_ids: Vec<u64> = original.ids().to_vec();
            for id in old_ids {
                original.remove_by_id(id);
            }
            for q in &pts {
                original.push(*q);
            }
            let new_block = self.store.allocate();
            for q in &second {
                self.store.block_mut(new_block).push(*q);
            }
            self.update_block_mbr(block);
            self.update_block_mbr(new_block);
            // Register the new block under the leaf parent (allowed to exceed
            // the nominal fan-out; a full node-split cascade is not needed
            // for the paper's insertion experiments).
            if let Some(&leaf_parent) = path.last() {
                if let NodeKind::LeafParent(blocks) = &mut self.nodes[leaf_parent].kind {
                    blocks.push(new_block);
                }
            }
        }
        self.refresh_mbrs(&path);
        self.n_points += 1;
    }

    fn delete(&mut self, p: &Point) -> bool {
        let Some(root) = self.root else { return false };
        // Locate the block containing p with an MBR-guided search.
        let mut stack = vec![(root, Vec::new())];
        while let Some((id, path)) = stack.pop() {
            if !self.nodes[id].mbr.contains(p) {
                continue;
            }
            let mut path = path;
            path.push(id);
            match self.nodes[id].kind.clone() {
                NodeKind::Internal(children) => {
                    for c in children {
                        stack.push((c, path.clone()));
                    }
                }
                NodeKind::LeafParent(blocks) => {
                    for b in blocks {
                        let found = self.store.block(b).find_at(p.x, p.y).map(|q| q.id);
                        if let Some(id_found) = found {
                            if id_found == p.id || p.id == 0 {
                                self.store.block_mut(b).remove_by_id(id_found);
                                self.update_block_mbr(b);
                                self.refresh_mbrs(&path);
                                self.n_points -= 1;
                                return true;
                            }
                        }
                    }
                }
            }
        }
        false
    }

    fn size_bytes(&self) -> usize {
        let dir: usize = self
            .nodes
            .iter()
            .map(|n| {
                std::mem::size_of::<Rect>()
                    + match &n.kind {
                        NodeKind::Internal(c) => c.len() * std::mem::size_of::<usize>(),
                        NodeKind::LeafParent(b) => b.len() * std::mem::size_of::<BlockId>(),
                    }
            })
            .sum();
        // HRR additionally keeps two B-trees for the rank-space mapping of
        // updates (the reason it is larger than RSMI in Fig. 7a); charge an
        // equivalent of 2 x 16 bytes per point for them.
        self.store.size_bytes()
            + dir
            + self.block_mbrs.len() * std::mem::size_of::<Rect>()
            + self.n_points * 32
    }

    fn height(&self) -> usize {
        self.height
    }

    fn write_snapshot(&self, w: &mut SnapshotWriter) -> Result<(), PersistError> {
        self.store.write_snapshot(w);
        w.begin_section(SECTION_HRR);
        w.put_opt_usize(self.root);
        w.put_usize(self.height);
        w.put_usize(self.n_points);
        w.put_usize(self.nodes.len());
        for node in &self.nodes {
            w.put_rect(&node.mbr);
            match &node.kind {
                NodeKind::Internal(children) => {
                    w.put_u8(0);
                    w.put_usize(children.len());
                    for &c in children {
                        w.put_usize(c);
                    }
                }
                NodeKind::LeafParent(blocks) => {
                    w.put_u8(1);
                    w.put_usize(blocks.len());
                    for &b in blocks {
                        w.put_usize(b);
                    }
                }
            }
        }
        w.put_usize(self.block_mbrs.len());
        for mbr in &self.block_mbrs {
            w.put_rect(mbr);
        }
        w.end_section();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use common::brute_force;
    use datagen::{generate, Distribution};

    fn cx() -> QueryContext {
        QueryContext::new()
    }

    fn build_small(n: usize) -> (Vec<Point>, HilbertRTree) {
        let pts = generate(Distribution::skewed_default(), n, 23);
        let tree = HilbertRTree::build(pts.clone(), 20);
        (pts, tree)
    }

    #[test]
    fn point_queries_find_every_point() {
        let (pts, tree) = build_small(1500);
        for p in &pts {
            assert_eq!(tree.point_query(p, &mut cx()).map(|f| f.id), Some(p.id));
        }
        assert!(tree
            .point_query(&Point::new(0.987654, 0.123456), &mut cx())
            .is_none());
    }

    #[test]
    fn window_queries_are_exact() {
        let (pts, tree) = build_small(2000);
        for w in [
            Rect::new(0.0, 0.0, 0.2, 0.01),
            Rect::new(0.3, 0.0, 0.7, 0.2),
            Rect::new(0.0, 0.0, 1.0, 1.0),
        ] {
            let mut truth: Vec<u64> = brute_force::window_query(&pts, &w)
                .iter()
                .map(|p| p.id)
                .collect();
            let mut got: Vec<u64> = tree
                .window_query(&w, &mut cx())
                .iter()
                .map(|p| p.id)
                .collect();
            truth.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, truth);
        }
    }

    #[test]
    fn knn_matches_brute_force_distances() {
        let (pts, tree) = build_small(1000);
        for q in [Point::new(0.5, 0.1), Point::new(0.9, 0.9)] {
            for k in [1, 10, 50] {
                let truth = brute_force::knn_query(&pts, &q, k);
                let got = tree.knn_query(&q, k, &mut cx());
                assert_eq!(got.len(), k);
                for (t, g) in truth.iter().zip(&got) {
                    assert!((t.dist(&q) - g.dist(&q)).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn tree_height_grows_logarithmically() {
        let (_, small) = build_small(500);
        let pts = generate(Distribution::Uniform, 50_000, 29);
        let big = HilbertRTree::build(pts, 100);
        assert!(small.height() >= 2);
        assert!(big.height() >= small.height());
        assert!(big.height() <= 4);
    }

    #[test]
    fn inserts_are_found_and_window_queries_stay_exact() {
        let (pts, mut tree) = build_small(800);
        let extra: Vec<Point> = (0..200)
            .map(|i| {
                Point::with_id(
                    0.001 + 0.004 * (i as f64 % 10.0),
                    0.002 + 0.0001 * i as f64,
                    50_000 + i,
                )
            })
            .collect();
        for p in &extra {
            tree.insert(*p);
        }
        assert_eq!(tree.len(), 1000);
        for p in &extra {
            assert_eq!(tree.point_query(p, &mut cx()).map(|f| f.id), Some(p.id));
        }
        let w = Rect::new(0.0, 0.0, 0.05, 0.05);
        let mut all = pts.clone();
        all.extend_from_slice(&extra);
        let mut truth: Vec<u64> = brute_force::window_query(&all, &w)
            .iter()
            .map(|p| p.id)
            .collect();
        let mut got: Vec<u64> = tree
            .window_query(&w, &mut cx())
            .iter()
            .map(|p| p.id)
            .collect();
        truth.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, truth);
    }

    #[test]
    fn delete_removes_points() {
        let (pts, mut tree) = build_small(600);
        assert!(tree.delete(&pts[100]));
        assert!(tree.point_query(&pts[100], &mut cx()).is_none());
        assert_eq!(tree.len(), 599);
        assert!(!tree.delete(&pts[100]));
    }

    #[test]
    fn empty_tree_is_harmless_and_bootstraps_on_insert() {
        let mut tree = HilbertRTree::build(vec![], 20);
        assert!(tree.point_query(&Point::new(0.5, 0.5), &mut cx()).is_none());
        assert!(tree.window_query(&Rect::unit(), &mut cx()).is_empty());
        assert!(tree
            .knn_query(&Point::new(0.5, 0.5), 5, &mut cx())
            .is_empty());
        tree.insert(Point::with_id(0.1, 0.9, 3));
        assert_eq!(tree.len(), 1);
        assert!(tree.point_query(&Point::new(0.1, 0.9), &mut cx()).is_some());
    }

    #[test]
    fn access_accounting_counts_nodes_and_blocks() {
        let (pts, tree) = build_small(2000);
        let mut c = cx();
        let _ = tree.point_query(&pts[0], &mut c);
        // At least the leaf-parent node and one block are touched.
        assert!(c.stats.nodes_visited >= 1);
        assert!(c.stats.blocks_touched >= 1);
        assert!(c.stats.total_accesses() >= 2);
    }
}
